//! SMT extension (thesis §8.2.2 — listed as future work).
//!
//! Simultaneous multithreading shares the *core* structures, not just the
//! memory hierarchy. Following the static-partitioning view of SMT
//! modeling (each hardware thread owns a slice of the ROB/IQ/LSQ and a
//! fair share of dispatch bandwidth), every thread is predicted on a
//! scaled-down machine, with the shared caches partitioned by access
//! intensity exactly like the multi-core model:
//!
//! * ROB / IQ / LSQ: divided evenly between threads,
//! * dispatch/issue bandwidth: divided evenly (round-robin fetch),
//! * L1/L2 capacity: split by access intensity,
//! * LLC and bus: shared via the same fixed-point contention as
//!   [`MulticoreModel`](crate::multicore::MulticoreModel).
//!
//! The headline question SMT answers — does co-scheduling raise
//! throughput? — falls out: memory-bound threads overlap their stalls
//! (throughput gain), while compute-bound threads split a pipeline that
//! was already saturated (no gain).

use crate::config::ModelConfig;
use crate::model::{IntervalModel, Prediction};
use crate::prepared::PreparedProfile;
use pmt_profiler::ApplicationProfile;
use pmt_uarch::{CacheConfig, MachineConfig};
use serde::{Deserialize, Serialize};

/// Prediction for one hardware thread.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ThreadPrediction {
    /// Thread's workload.
    pub workload: String,
    /// Prediction under SMT sharing.
    pub smt: Prediction,
    /// Prediction owning the whole core.
    pub solo: Prediction,
}

impl ThreadPrediction {
    /// Per-thread slowdown under SMT (≥ 1 in practice).
    pub fn slowdown(&self) -> f64 {
        if self.solo.cycles > 0.0 {
            self.smt.cycles / self.solo.cycles
        } else {
            1.0
        }
    }
}

/// The SMT co-schedule outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SmtPrediction {
    /// Per-thread outcomes.
    pub threads: Vec<ThreadPrediction>,
}

impl SmtPrediction {
    /// Aggregate throughput in instructions per cycle.
    pub fn throughput_ipc(&self) -> f64 {
        self.threads.iter().map(|t| t.smt.ipc()).sum()
    }

    /// Throughput gain over running the threads back to back on one
    /// core: `Σ IPC_smt / mean(IPC_solo)`. Values above 1 mean SMT pays.
    pub fn throughput_gain(&self) -> f64 {
        let solo_mean = self.threads.iter().map(|t| t.solo.ipc()).sum::<f64>()
            / self.threads.len().max(1) as f64;
        if solo_mean > 0.0 {
            self.throughput_ipc() / solo_mean
        } else {
            1.0
        }
    }
}

/// The SMT interval model.
#[derive(Clone, Debug)]
pub struct SmtModel {
    machine: MachineConfig,
    config: ModelConfig,
}

impl SmtModel {
    /// A model for an SMT core described by `machine`.
    pub fn new(machine: &MachineConfig, config: ModelConfig) -> SmtModel {
        SmtModel {
            machine: machine.clone(),
            config,
        }
    }

    /// Predict `profiles.len()` hardware threads sharing the core.
    ///
    /// # Panics
    ///
    /// Panics when `profiles` is empty or larger than 8 threads.
    pub fn predict(&self, profiles: &[&ApplicationProfile]) -> SmtPrediction {
        let n = profiles.len() as u32;
        assert!((1..=8).contains(&n), "1..=8 hardware threads");
        let solo_model = IntervalModel::with_config(&self.machine, self.config.clone());
        // Prepare once per thread: the solo and SMT evaluations differ
        // only in the machine, so they share one fitted profile each.
        let prepared: Vec<PreparedProfile<'_>> =
            profiles.iter().map(|p| PreparedProfile::new(p)).collect();
        let solos: Vec<Prediction> = prepared
            .iter()
            .map(|pp| solo_model.predict_prepared(pp))
            .collect();
        if n == 1 {
            return SmtPrediction {
                threads: vec![ThreadPrediction {
                    workload: profiles[0].name.clone(),
                    smt: solos[0].clone(),
                    solo: solos[0].clone(),
                }],
            };
        }

        // Cache shares by L1-D access intensity (accesses per cycle).
        let intensity: Vec<f64> = solos
            .iter()
            .map(|p| p.activity.l1d_accesses.max(1.0) / p.cycles.max(1.0))
            .collect();
        let total_intensity: f64 = intensity.iter().sum();

        let threads = prepared
            .iter()
            .zip(&solos)
            .zip(&intensity)
            .map(|((pp, solo), &i)| {
                let share = (i / total_intensity).clamp(0.1, 0.9);
                let m = self.thread_machine(n, share);
                let smt = IntervalModel::with_config(&m, self.config.clone()).predict_prepared(pp);
                ThreadPrediction {
                    workload: pp.profile().name.clone(),
                    smt,
                    solo: solo.clone(),
                }
            })
            .collect();
        SmtPrediction { threads }
    }

    /// The per-thread slice of the core.
    fn thread_machine(&self, n: u32, cache_share: f64) -> MachineConfig {
        let mut m = self.machine.clone();
        // Static partition of the window structures.
        m.core.rob_size = (m.core.rob_size / n).max(16);
        m.core.iq_size = (m.core.iq_size / n).max(8);
        m.core.lsq_size = (m.core.lsq_size / n).max(8);
        // Fair share of dispatch bandwidth (round-robin fetch).
        m.core.dispatch_width = (m.core.dispatch_width / n).max(1);
        // Shared caches split by intensity.
        let scale = |c: &CacheConfig, share: f64| -> CacheConfig {
            CacheConfig::new(
                ((c.size_kb as f64 * share) as u32).max(4),
                c.associativity,
                c.line_bytes,
                c.latency,
            )
        };
        m.caches.l1d = scale(&m.caches.l1d, cache_share);
        m.caches.l1i = scale(&m.caches.l1i, 1.0 / n as f64);
        m.caches.l2 = scale(&m.caches.l2, cache_share);
        m.caches.l3 = scale(&m.caches.l3, cache_share);
        m.name = format!("{}/smt{}", self.machine.name, n);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmt_profiler::{Profiler, ProfilerConfig};
    use pmt_workloads::WorkloadSpec;

    fn profile(name: &str) -> ApplicationProfile {
        let spec = WorkloadSpec::by_name(name).unwrap();
        Profiler::new(ProfilerConfig::fast_test()).profile_named(name, &mut spec.trace(40_000))
    }

    fn model() -> SmtModel {
        SmtModel::new(&MachineConfig::nehalem(), ModelConfig::default())
    }

    #[test]
    fn single_thread_is_solo() {
        let p = profile("hmmer");
        let out = model().predict(&[&p]);
        assert!((out.threads[0].slowdown() - 1.0).abs() < 1e-12);
        assert!((out.throughput_gain() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn every_thread_slows_down_but_not_by_more_than_the_share() {
        let a = profile("gcc");
        let b = profile("h264ref");
        let out = model().predict(&[&a, &b]);
        for t in &out.threads {
            let s = t.slowdown();
            assert!(s >= 1.0, "{} sped up: {s}", t.workload);
            assert!(s < 6.0, "{} collapsed: {s}", t.workload);
        }
    }

    #[test]
    fn latency_bound_threads_gain_from_smt() {
        // A pointer-chasing thread barely uses the pipeline; a second
        // hardware thread recovers real throughput.
        let mcf = profile("mcf");
        let out = model().predict(&[&mcf, &mcf]);
        assert!(
            out.throughput_gain() > 1.25,
            "mcf pair gain {}",
            out.throughput_gain()
        );
    }

    #[test]
    fn compute_pairs_gain_is_bounded_by_the_pipeline_split() {
        // Two compute threads split an already-busy pipeline: some gain
        // (solo IPC sits below the width), but nowhere near 2×.
        let out = model().predict(&[&profile("namd"), &profile("hmmer")]);
        let g = out.throughput_gain();
        assert!(g > 1.0 && g < 1.8, "compute pair gain {g}");
    }

    #[test]
    fn smt_throughput_is_bounded_by_thread_count() {
        let p = profile("bzip2");
        let out = model().predict(&[&p, &p]);
        assert!(out.throughput_gain() <= 2.0 + 1e-9);
        assert!(out.throughput_ipc() > 0.0);
    }

    #[test]
    #[should_panic(expected = "1..=8 hardware threads")]
    fn rejects_empty_schedules() {
        let _ = model().predict(&[]);
    }
}

//! The assembled interval model (Eq 3.1) and its predictions.

use crate::branch_penalty::{branch_penalty, BranchPenalty};
use crate::cache_model::CacheModel;
use crate::config::{EvaluationMode, MlpModelKind, ModelConfig};
use crate::dispatch::{effective_dispatch_rate, DispatchBreakdown};
use crate::llc_chaining::{chain_penalty_total, ChainInputs};
use crate::mlp::{cold_miss_mlp, MemoryBehavior, StrideMlpModel, VirtualStream};
use crate::prepared::{PreparedProfile, PreparedWindow};
use pmt_profiler::{
    ApplicationProfile, DependenceProfile, LoadDependenceDistribution, MicroTraceProfile,
    StaticLoadProfile,
};
use pmt_statstack::StackDistanceModel;
use pmt_trace::UopClass;
use pmt_uarch::{ActivityVector, CpiComponent, CpiStack, MachineConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Prediction for one evaluation window (a micro-trace's window, or the
/// whole application in combined mode).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WindowPrediction {
    /// Window index.
    pub index: u64,
    /// Instructions this window stands for.
    pub instructions: f64,
    /// Predicted cycles.
    pub cycles: f64,
    /// CPI stack of the window.
    pub stack: CpiStack,
    /// Effective-dispatch-rate breakdown (Fig 3.6).
    pub dispatch: DispatchBreakdown,
    /// Memory behaviour (MLP, misses).
    pub memory: MemoryBehavior,
    /// Predicted branch misprediction rate.
    pub branch_miss_rate: f64,
    /// Predicted activity factors of this window.
    pub activity: ActivityVector,
}

impl WindowPrediction {
    /// Window CPI.
    pub fn cpi(&self) -> f64 {
        if self.instructions > 0.0 {
            self.cycles / self.instructions
        } else {
            0.0
        }
    }
}

/// The complete performance prediction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Prediction {
    /// Workload name.
    pub name: String,
    /// Instructions modeled.
    pub instructions: u64,
    /// μops modeled.
    pub uops: f64,
    /// Predicted cycles.
    pub cycles: f64,
    /// CPI stack (sums to `cpi()`).
    pub cpi_stack: CpiStack,
    /// Predicted activity factors (Eq 3.16) for the power model.
    pub activity: ActivityVector,
    /// Miss-weighted average MLP.
    pub mlp: f64,
    /// Branch-weighted misprediction rate.
    pub branch_miss_rate: f64,
    /// Per-window predictions (phase behaviour, Fig 6.14).
    pub windows: Vec<WindowPrediction>,
}

impl Prediction {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions > 0 {
            self.cycles / self.instructions as f64
        } else {
            0.0
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles > 0.0 {
            self.instructions as f64 / self.cycles
        } else {
            0.0
        }
    }

    /// Execution time in seconds at a clock frequency.
    pub fn seconds_at(&self, frequency_ghz: f64) -> f64 {
        self.cycles / (frequency_ghz * 1e9)
    }

    /// **Signed** relative CPI error of this prediction against a
    /// reference CPI (typically the cycle-level simulator's):
    /// `(model − reference) / reference`. Positive means the model
    /// over-predicts.
    ///
    /// This is the single error convention of the workspace — the sweep
    /// (`pmt_dse::PointOutcome::cpi_error`), the experiment harness and
    /// the validation subsystem (`pmt_validate`) all report signed
    /// relative errors so systematic bias survives averaging, and take
    /// magnitudes explicitly (`abs_*` helpers, `ErrorStats::mean_abs`)
    /// when only size matters.
    pub fn cpi_error_vs(&self, reference_cpi: f64) -> f64 {
        (self.cpi() - reference_cpi) / reference_cpi
    }

    /// The aggregate view of this prediction — the fields
    /// [`IntervalModel::predict_summary`] produces, bit for bit.
    pub fn summary(&self) -> PredictionSummary {
        PredictionSummary {
            instructions: self.instructions,
            uops: self.uops,
            cycles: self.cycles,
            cpi_stack: self.cpi_stack.clone(),
            activity: self.activity.clone(),
            mlp: self.mlp,
            branch_miss_rate: self.branch_miss_rate,
        }
    }
}

/// The aggregate part of a [`Prediction`]: everything a design-space
/// sweep consumes (CPI, activity factors for power, runtime), without the
/// per-window breakdown or the workload-name clone.
///
/// Produced by [`IntervalModel::predict_summary`] on the prepared fast
/// path; numerically bit-identical to the corresponding fields of
/// [`IntervalModel::predict`] / [`Prediction::summary`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PredictionSummary {
    /// Instructions modeled.
    pub instructions: u64,
    /// μops modeled.
    pub uops: f64,
    /// Predicted cycles.
    pub cycles: f64,
    /// CPI stack (sums to `cpi()`).
    pub cpi_stack: CpiStack,
    /// Predicted activity factors (Eq 3.16) for the power model.
    pub activity: ActivityVector,
    /// Miss-weighted average MLP.
    pub mlp: f64,
    /// Branch-weighted misprediction rate.
    pub branch_miss_rate: f64,
}

impl PredictionSummary {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions > 0 {
            self.cycles / self.instructions as f64
        } else {
            0.0
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles > 0.0 {
            self.instructions as f64 / self.cycles
        } else {
            0.0
        }
    }

    /// Execution time in seconds at a clock frequency.
    pub fn seconds_at(&self, frequency_ghz: f64) -> f64 {
        self.cycles / (frequency_ghz * 1e9)
    }
}

/// The micro-architecture independent interval model.
#[derive(Clone, Debug)]
pub struct IntervalModel {
    machine: MachineConfig,
    config: ModelConfig,
}

/// Everything one window evaluation needs.
pub(crate) struct WindowInputs<'a> {
    /// Position of this window in evaluation order (0 in combined mode) —
    /// the identity batched hooks memoize per-window state under.
    pub(crate) window: u32,
    index: u64,
    instructions: f64,
    class_counts: [f64; UopClass::COUNT],
    pub(crate) deps: &'a DependenceProfile,
    load_deps: &'a LoadDependenceDistribution,
    entropy: f64,
    pub(crate) loads_model: CacheModel,
    stores_model: CacheModel,
    static_loads: &'a [StaticLoadProfile],
    /// Prebuilt virtual-stream skeleton for the stride-MLP model.
    stream: &'a VirtualStream,
    stream_uops: u64,
    /// Exact cold misses in the window (profiler-counted).
    window_cold: f64,
    /// Exact store cold misses in the window.
    window_cold_stores: f64,
}

/// The machine-dependent load/store scalars [`IntervalModel`] feeds its
/// memory model, grouped so the call reads like the thesis' Eq 4.x input
/// list.
struct MemoryInputs {
    /// Loads in the window.
    loads: f64,
    /// L̄(ROB): loads per ROB window.
    loads_per_rob: f64,
    /// LLC store misses (bandwidth/power accounting).
    store_llc_misses: f64,
}

/// Streaming accumulator combining per-window predictions exactly like
/// the original collect-then-fold loop, so summaries stay bit-identical
/// whether or not the windows themselves are kept.
#[derive(Default)]
struct Combiner {
    cycles: f64,
    stack_cycles: [f64; CpiComponent::ALL.len()],
    activity: ActivityVector,
    mlp_num: f64,
    mlp_den: f64,
    br_num: f64,
    br_den: f64,
}

impl Combiner {
    fn add(&mut self, w: &WindowPrediction) {
        self.cycles += w.cycles;
        for c in CpiComponent::ALL {
            self.stack_cycles[c as usize] += w.stack.get(c) * w.instructions;
        }
        merge_activity(&mut self.activity, &w.activity);
        self.mlp_num += w.memory.mlp * w.memory.llc_load_misses.max(1e-9);
        self.mlp_den += w.memory.llc_load_misses.max(1e-9);
        self.br_num += w.branch_miss_rate * w.instructions;
        self.br_den += w.instructions;
    }

    fn finish(mut self, profile: &ApplicationProfile) -> PredictionSummary {
        let instructions = profile.total_instructions;
        let mut cpi_stack = CpiStack::default();
        if instructions > 0 {
            for c in CpiComponent::ALL {
                cpi_stack.add(c, self.stack_cycles[c as usize] / instructions as f64);
            }
        }
        self.activity.cycles = self.cycles;
        self.activity.instructions = instructions as f64;
        PredictionSummary {
            instructions,
            uops: profile.total_uops,
            cycles: self.cycles,
            cpi_stack,
            activity: self.activity,
            mlp: if self.mlp_den > 0.0 {
                self.mlp_num / self.mlp_den
            } else {
                1.0
            },
            branch_miss_rate: if self.br_den > 0.0 {
                self.br_num / self.br_den
            } else {
                0.0
            },
        }
    }
}

impl IntervalModel {
    /// Model with the default (thesis-best) configuration.
    pub fn new(machine: &MachineConfig) -> IntervalModel {
        Self::with_config(machine, ModelConfig::default())
    }

    /// Model with an explicit configuration.
    pub fn with_config(machine: &MachineConfig, config: ModelConfig) -> IntervalModel {
        IntervalModel {
            machine: machine.clone(),
            config,
        }
    }

    /// The machine being modeled.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Predict performance for a profiled application.
    ///
    /// Thin wrapper over the prepared fast path: it compiles the profile
    /// with [`PreparedProfile::new`] and immediately evaluates it, so a
    /// one-off prediction and a prepared sweep run the exact same
    /// arithmetic (bit-identical results). Callers evaluating the same
    /// profile for many machines should prepare once themselves and call
    /// [`predict_prepared`](Self::predict_prepared) /
    /// [`predict_summary`](Self::predict_summary) per machine.
    pub fn predict(&self, profile: &ApplicationProfile) -> Prediction {
        self.predict_prepared(&PreparedProfile::new(profile))
    }

    /// Predict performance from a prepared profile: only the
    /// machine-dependent work (StatStack queries + Eq 3.1 arithmetic)
    /// runs; every machine-independent model was fitted once in
    /// [`PreparedProfile::new`]. Bit-identical to
    /// [`predict`](Self::predict).
    pub fn predict_prepared(&self, prepared: &PreparedProfile<'_>) -> Prediction {
        let (summary, windows) = self.evaluate_prepared(prepared, true);
        Prediction {
            name: prepared.profile().name.clone(),
            instructions: summary.instructions,
            uops: summary.uops,
            cycles: summary.cycles,
            cpi_stack: summary.cpi_stack,
            activity: summary.activity,
            mlp: summary.mlp,
            branch_miss_rate: summary.branch_miss_rate,
            windows,
        }
    }

    /// The sweep-oriented variant of
    /// [`predict_prepared`](Self::predict_prepared): identical arithmetic,
    /// but the per-window predictions are folded on the fly instead of
    /// collected and the workload name is not cloned — no per-point heap
    /// traffic beyond the model's own scratch. Every summary field is
    /// bit-identical to the corresponding [`Prediction`] field
    /// ([`Prediction::summary`]).
    pub fn predict_summary(&self, prepared: &PreparedProfile<'_>) -> PredictionSummary {
        self.evaluate_prepared(prepared, false).0
    }

    /// Shared evaluation core: walk the windows once, combining as we go;
    /// keep the per-window predictions only when `collect_windows` asks.
    fn evaluate_prepared(
        &self,
        prepared: &PreparedProfile<'_>,
        collect_windows: bool,
    ) -> (PredictionSummary, Vec<WindowPrediction>) {
        Evaluator {
            machine: &self.machine,
            config: &self.config,
        }
        .run(prepared, collect_windows, &mut DirectHooks)
    }
}

/// Identifies one fitted StatStack curve of a [`PreparedProfile`] across
/// an evaluation — the key batched hooks use to find the curve's flat SoA
/// storage and memoize queries against it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum CurveId {
    /// The instruction-path model.
    Inst,
    /// The global (combined-mode) load model.
    GlobalLoads,
    /// The global (combined-mode) store model.
    GlobalStores,
    /// Window `i`'s load model.
    WindowLoads(u32),
    /// Window `i`'s store model.
    WindowStores(u32),
}

impl CurveId {
    /// Position of this curve in [`PreparedProfile`] evaluation order
    /// (instruction, global loads, global stores, then each window's
    /// loads/stores pair) — the layout `kernels::CurveArena` builds.
    pub(crate) fn arena_index(self) -> u32 {
        match self {
            CurveId::Inst => 0,
            CurveId::GlobalLoads => 1,
            CurveId::GlobalStores => 2,
            CurveId::WindowLoads(i) => 3 + 2 * i,
            CurveId::WindowStores(i) => 4 + 2 * i,
        }
    }
}

/// The two machine-dependent computations [`Evaluator`] delegates, so the
/// batched kernels can answer them from flat SoA curves and per-batch
/// memoization while the scalar path computes them directly. Both
/// implementations must return bit-identical values — the conformance
/// suite (`tests/batch_identity.rs`) pins this on each path.
pub(crate) trait EvalHooks {
    /// Resolve one fitted curve's machine-dependent cache queries:
    /// critical reuse distances and miss ratios at `lines`.
    fn cache_model(
        &mut self,
        id: CurveId,
        model: &Arc<StackDistanceModel>,
        lines: [u64; 3],
    ) -> CacheModel;

    /// Run the stride-MLP virtual-stream walk for one window.
    fn stride(
        &mut self,
        machine: &MachineConfig,
        deff: f64,
        inp: &WindowInputs<'_>,
        loads: f64,
        store_llc_misses: f64,
    ) -> MemoryBehavior;

    /// CP(ROB): the window dependency profile's critical-path length.
    /// A pure function of `(window, rob)` — the batched hooks memoize it.
    fn critical_path(&mut self, inp: &WindowInputs<'_>, rob: u32) -> f64 {
        inp.deps.cp(rob)
    }

    /// The branch-misprediction penalty (leaky-bucket Alg 3.2) for one
    /// window. A pure function of the window's dependency profile and
    /// the five scalars — the complete input set of
    /// [`branch_penalty`], which the batched hooks key a memo by.
    fn branch(
        &mut self,
        inp: &WindowInputs<'_>,
        rob: u32,
        width: u32,
        frontend_depth: u32,
        interval: f64,
        lat: f64,
    ) -> BranchPenalty {
        branch_penalty(inp.deps, rob, width, frontend_depth, interval, lat)
    }
}

/// The scalar path: every query computed directly, exactly as the
/// one-point model always has.
pub(crate) struct DirectHooks;

impl EvalHooks for DirectHooks {
    fn cache_model(
        &mut self,
        _id: CurveId,
        model: &Arc<StackDistanceModel>,
        lines: [u64; 3],
    ) -> CacheModel {
        CacheModel::from_fitted(model, lines)
    }

    fn stride(
        &mut self,
        machine: &MachineConfig,
        deff: f64,
        inp: &WindowInputs<'_>,
        loads: f64,
        store_llc_misses: f64,
    ) -> MemoryBehavior {
        stride_stream_behavior(machine, deff, inp, loads, store_llc_misses)
    }
}

/// The stride-MLP walk both hook implementations share: the batched path
/// calls this on a memo miss, so a memo hit replays bytes produced by
/// this very computation.
pub(crate) fn stride_stream_behavior(
    machine: &MachineConfig,
    deff: f64,
    inp: &WindowInputs<'_>,
    loads: f64,
    store_llc_misses: f64,
) -> MemoryBehavior {
    StrideMlpModel::new(machine, deff).evaluate_stream(
        inp.stream,
        inp.static_loads,
        &inp.loads_model,
        inp.stream_uops,
        loads,
        store_llc_misses,
        inp.window_cold,
    )
}

/// The evaluation core behind [`IntervalModel`], borrowing machine and
/// config so batched callers can evaluate one design point per call
/// without cloning a `MachineConfig`/`ModelConfig` pair per point.
pub(crate) struct Evaluator<'m> {
    pub(crate) machine: &'m MachineConfig,
    pub(crate) config: &'m ModelConfig,
}

impl Evaluator<'_> {
    /// Walk the windows once, combining as we go; keep the per-window
    /// predictions only when `collect_windows` asks.
    pub(crate) fn run(
        &self,
        prepared: &PreparedProfile<'_>,
        collect_windows: bool,
        hooks: &mut impl EvalHooks,
    ) -> (PredictionSummary, Vec<WindowPrediction>) {
        let profile = prepared.profile();
        let inst_model = hooks.cache_model(
            CurveId::Inst,
            prepared.inst_model(),
            CacheModel::inst_lines(&self.machine.caches),
        );

        let mut combiner = Combiner::default();
        let mut windows = Vec::new();
        let mut fold = |w: WindowPrediction| {
            combiner.add(&w);
            if collect_windows {
                windows.push(w);
            }
        };
        match self.config.evaluation {
            EvaluationMode::PerMicroTrace if !profile.micro_traces.is_empty() => {
                for (wi, (t, pw)) in profile
                    .micro_traces
                    .iter()
                    .zip(prepared.windows())
                    .enumerate()
                {
                    let inputs = self.trace_inputs(wi as u32, t, pw, hooks);
                    fold(self.evaluate_window(&inputs, profile, &inst_model, hooks));
                }
            }
            _ => {
                let inputs = self.combined_inputs(profile, prepared, hooks);
                fold(self.evaluate_window(&inputs, profile, &inst_model, hooks));
            }
        }
        (combiner.finish(profile), windows)
    }

    /// Per-micro-trace inputs: machine-independent parts from the
    /// preparation, machine-dependent cache queries done here. `wi` is
    /// the window's position in evaluation order.
    fn trace_inputs<'a>(
        &self,
        wi: u32,
        t: &'a MicroTraceProfile,
        pw: &'a PreparedWindow,
        hooks: &mut impl EvalHooks,
    ) -> WindowInputs<'a> {
        let data_lines = CacheModel::data_lines(&self.machine.caches);
        WindowInputs {
            window: wi,
            index: t.index,
            instructions: t.weight_instructions as f64,
            class_counts: pw.class_counts,
            deps: &t.deps,
            load_deps: &t.load_deps,
            entropy: pw.entropy,
            loads_model: hooks.cache_model(CurveId::WindowLoads(wi), &pw.loads, data_lines),
            stores_model: hooks.cache_model(CurveId::WindowStores(wi), &pw.stores, data_lines),
            static_loads: &t.static_loads,
            stream: &pw.stream,
            stream_uops: t.uops,
            window_cold: t.window_cold_misses as f64,
            window_cold_stores: t.window_cold_store_misses as f64,
        }
    }

    /// Whole-application inputs (combined mode).
    fn combined_inputs<'a>(
        &self,
        profile: &'a ApplicationProfile,
        prepared: &'a PreparedProfile<'_>,
        hooks: &mut impl EvalHooks,
    ) -> WindowInputs<'a> {
        // The stride sample (the first micro-trace's static loads), its
        // length and its skeleton come from the preparation as one unit so
        // the skeleton's owner indices always match the slice (the thesis'
        // combined variant pairs with the cold-miss model, where these
        // inputs are unused).
        let (static_loads, stream_uops, stream) = prepared.combined_stride_inputs();
        let data_lines = CacheModel::data_lines(&self.machine.caches);
        let (global_loads, global_stores) = prepared.global_models();
        WindowInputs {
            window: 0,
            index: 0,
            instructions: profile.total_instructions as f64,
            class_counts: *prepared.combined_class_counts(),
            deps: &profile.deps,
            load_deps: &profile.load_deps,
            entropy: profile.branch.entropy,
            loads_model: hooks.cache_model(CurveId::GlobalLoads, global_loads, data_lines),
            stores_model: hooks.cache_model(CurveId::GlobalStores, global_stores, data_lines),
            static_loads,
            stream,
            stream_uops,
            window_cold: profile.memory.cold.total_cold() as f64,
            window_cold_stores: profile.memory.stores.cold() as f64,
        }
    }

    /// Evaluate Eq 3.1 for one window.
    fn evaluate_window(
        &self,
        inp: &WindowInputs<'_>,
        profile: &ApplicationProfile,
        inst_model: &CacheModel,
        hooks: &mut impl EvalHooks,
    ) -> WindowPrediction {
        let m = self.machine;
        let n_uops: f64 = inp.class_counts.iter().sum();
        let rob = m.core.rob_size;

        // --- Average latency, with short (L1/L2) load misses folded in ----
        let lr = &inp.loads_model.ratios;
        let l1_lat = m.caches.l1d.latency as f64;
        let l2_lat = m.caches.l2.latency as f64;
        let load_lat = l1_lat + (l2_lat - l1_lat) * lr.l1;
        let mut lat = 0.0;
        if n_uops > 0.0 {
            for c in UopClass::ALL {
                let frac = inp.class_counts[c.index()] / n_uops;
                let base = if c == UopClass::Load {
                    load_lat
                } else {
                    m.exec.latency(c) as f64
                };
                lat += frac * base;
            }
        } else {
            lat = 1.0;
        }

        // --- Base: effective dispatch rate (Eq 3.10) ----------------------
        let cp = hooks.critical_path(inp, rob);
        let dispatch = effective_dispatch_rate(m, &inp.class_counts, cp, lat);
        let base_cycles = n_uops / dispatch.effective;

        // --- Branches (§3.5) -----------------------------------------------
        let miss_rate = self
            .config
            .entropy_model
            .miss_rate(m.predictor.kind, inp.entropy);
        let branches = inp.class_counts[UopClass::Branch.index()];
        let mispredicts = branches * miss_rate;
        let branch_cycles = if mispredicts > 0.5 {
            let interval = n_uops / mispredicts;
            let pen = hooks.branch(
                inp,
                rob,
                m.core.dispatch_width,
                m.core.frontend_depth,
                interval,
                lat,
            );
            mispredicts * pen.total()
        } else {
            0.0
        };

        // --- Instruction cache misses (§2.5.1) ------------------------------
        let ir = &inst_model.ratios;
        let l3_lat = m.caches.l3.latency as f64;
        let dram = m.mem.dram_latency as f64;
        let inst_accesses = inp.instructions * profile.memory.inst_accesses_per_instruction;
        let icache_cycles =
            inst_accesses * (ir.l2_hit() * l2_lat + ir.l3_hit() * l3_lat + ir.l3 * dram);

        // --- Memory: MLP + DRAM penalty (Ch 4) ------------------------------
        let loads = inp.class_counts[UopClass::Load.index()];
        let stores = inp.class_counts[UopClass::Store.index()];
        let loads_per_rob = if n_uops > 0.0 {
            loads / n_uops * rob as f64
        } else {
            0.0
        };
        let sr_l1 = inp.stores_model.ratios.l1;
        let sr_l2 = inp.stores_model.ratios.l2;
        let store_cold_frac = inp.stores_model.cold_fraction();
        let store_llc_misses = (inp.stores_model.ratios.l3 - store_cold_frac).max(0.0) * stores
            + inp.window_cold_stores;
        let memory = self.memory_behavior(
            inp,
            MemoryInputs {
                loads,
                loads_per_rob,
                store_llc_misses,
            },
            &dispatch,
            profile,
            hooks,
        );

        let density = memory.miss_window_density.clamp(0.0, 1.0);
        let bus = if self.config.bus_queuing && memory.llc_load_misses > 0.0 {
            // Eq 4.6: include store bandwidth.
            let mlp_prime = memory.mlp * (memory.llc_load_misses + memory.llc_store_misses)
                / memory.llc_load_misses;
            // Eq 4.5, active only while misses are dense enough to queue.
            density * (mlp_prime + 1.0) / 2.0 * m.mem.bus_transfer_cycles as f64
        } else {
            0.0
        };
        // The window ahead of a miss drains concurrently with it, hiding
        // up to ROB/D_eff cycles of every miss group's latency — the same
        // threshold below which out-of-order execution hides latencies
        // entirely (§4.8).
        let rob_fill = rob as f64 / dispatch.effective;
        let effective_latency =
            (dram + bus - rob_fill).max((m.mem.bus_transfer_cycles as f64).max(20.0));
        let dram_cycles = memory.stalling_load_misses * effective_latency / memory.mlp.max(1.0);

        // --- LLC hit chaining (§4.8) ----------------------------------------
        let chain_cycles = if self.config.llc_chaining {
            let chain = ChainInputs::from_distribution(
                inp.load_deps,
                lr.l3_hit(),
                loads_per_rob,
                l3_lat,
                rob as f64,
                dispatch.effective,
            );
            chain_penalty_total(&chain, n_uops)
        } else {
            0.0
        };

        // --- Assemble -------------------------------------------------------
        let cycles = base_cycles + branch_cycles + icache_cycles + dram_cycles + chain_cycles;
        let mut stack = CpiStack::default();
        if inp.instructions > 0.0 {
            stack.add(CpiComponent::Base, base_cycles / inp.instructions);
            stack.add(CpiComponent::Branch, branch_cycles / inp.instructions);
            stack.add(CpiComponent::ICache, icache_cycles / inp.instructions);
            stack.add(CpiComponent::L3Data, chain_cycles / inp.instructions);
            stack.add(CpiComponent::Dram, dram_cycles / inp.instructions);
        }

        // --- Predicted activity factors (Eq 3.16) ---------------------------
        let inst_l1_misses = ir.l1 * inp.instructions;
        let dram_accesses =
            memory.llc_load_misses + memory.llc_store_misses + ir.l3 * inp.instructions;
        let activity = ActivityVector {
            uops: n_uops,
            instructions: inp.instructions,
            cycles,
            issue_per_class: inp.class_counts,
            rob_accesses: 2.0 * n_uops,
            iq_accesses: 2.0 * n_uops,
            regfile_reads: 1.4 * n_uops,
            regfile_writes: n_uops
                - inp.class_counts[UopClass::Store.index()]
                - inp.class_counts[UopClass::Branch.index()],
            l1i_accesses: inp.instructions,
            l1d_accesses: loads + stores,
            l2_accesses: lr.l1 * loads + sr_l1 * stores + inst_l1_misses,
            l3_accesses: lr.l2 * loads + sr_l2 * stores + ir.l2 * inp.instructions,
            dram_accesses,
            bus_transfers: dram_accesses,
            branch_lookups: branches,
            branch_misses: mispredicts,
        };

        WindowPrediction {
            index: inp.index,
            instructions: inp.instructions,
            cycles,
            stack,
            dispatch,
            memory,
            branch_miss_rate: miss_rate,
            activity,
        }
    }

    fn memory_behavior(
        &self,
        inp: &WindowInputs<'_>,
        mem: MemoryInputs,
        dispatch: &DispatchBreakdown,
        profile: &ApplicationProfile,
        hooks: &mut impl EvalHooks,
    ) -> MemoryBehavior {
        let m = self.machine;
        let lr = &inp.loads_model.ratios;
        let MemoryInputs {
            loads,
            loads_per_rob,
            store_llc_misses,
        } = mem;
        match self.config.mlp_model {
            MlpModelKind::Stride if !inp.static_loads.is_empty() && inp.stream_uops > 0 => {
                let mut behavior =
                    hooks.stride(m, dispatch.effective, inp, loads, store_llc_misses);
                if !self.config.mshr_cap {
                    // Undo the cap by re-flooring at the raw value — the
                    // cap is inside evaluate; approximate by scaling up.
                    behavior.mlp = behavior.mlp.max(1.0);
                }
                if !self.config.prefetch_model || !m.prefetcher.enabled {
                    behavior.stalling_load_misses = behavior.llc_load_misses;
                    behavior.prefetch_coverage = 0.0;
                }
                behavior
            }
            _ => {
                // Cold-miss model (Eqs 4.1–4.3).
                let cold_frac_access = inp.loads_model.cold_fraction();
                let m_llc = lr.l3.max(cold_frac_access);
                let cold_frac_misses = if m_llc > 0.0 {
                    (cold_frac_access / m_llc).min(1.0)
                } else {
                    0.0
                };
                let mean_cold = profile.memory.cold.mean_cold_per_rob(m.core.rob_size);
                let mshr = if self.config.mshr_cap {
                    m.mem.mshr_entries
                } else {
                    u32::MAX
                };
                let mlp = cold_miss_mlp(
                    inp.load_deps,
                    m_llc,
                    cold_frac_misses,
                    mean_cold,
                    loads_per_rob,
                    mshr,
                );
                // Reuse misses extrapolate as a rate; cold misses are the
                // window's exact count.
                let reuse_ratio = (m_llc - cold_frac_access).max(0.0);
                let llc_load_misses = reuse_ratio * loads + inp.window_cold;
                // Poisson estimate of the miss-window density.
                let misses_per_rob = m_llc * loads_per_rob;
                let miss_window_density = 1.0 - (-misses_per_rob).exp();
                MemoryBehavior {
                    mlp,
                    llc_load_misses,
                    stalling_load_misses: llc_load_misses,
                    llc_store_misses: store_llc_misses,
                    prefetch_coverage: 0.0,
                    miss_window_density,
                }
            }
        }
    }
}

fn merge_activity(into: &mut ActivityVector, from: &ActivityVector) {
    into.uops += from.uops;
    for (a, b) in into
        .issue_per_class
        .iter_mut()
        .zip(from.issue_per_class.iter())
    {
        *a += b;
    }
    into.rob_accesses += from.rob_accesses;
    into.iq_accesses += from.iq_accesses;
    into.regfile_reads += from.regfile_reads;
    into.regfile_writes += from.regfile_writes;
    into.l1i_accesses += from.l1i_accesses;
    into.l1d_accesses += from.l1d_accesses;
    into.l2_accesses += from.l2_accesses;
    into.l3_accesses += from.l3_accesses;
    into.dram_accesses += from.dram_accesses;
    into.bus_transfers += from.bus_transfers;
    into.branch_lookups += from.branch_lookups;
    into.branch_misses += from.branch_misses;
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmt_profiler::{Profiler, ProfilerConfig};
    use pmt_sim::{OooSimulator, SimConfig};
    use pmt_workloads::WorkloadSpec;

    fn profile_of(name: &str, n: u64) -> ApplicationProfile {
        let spec = WorkloadSpec::by_name(name).expect("suite member");
        Profiler::new(ProfilerConfig::fast_test()).profile_named(name, &mut spec.trace(n))
    }

    fn predict(name: &str, n: u64) -> Prediction {
        IntervalModel::new(&MachineConfig::nehalem()).predict(&profile_of(name, n))
    }

    fn simulate(name: &str, n: u64) -> pmt_sim::SimResult {
        let spec = WorkloadSpec::by_name(name).unwrap();
        OooSimulator::new(SimConfig::new(MachineConfig::nehalem())).run(&mut spec.trace(n))
    }

    #[test]
    fn prediction_is_positive_and_consistent() {
        let p = predict("astar", 40_000);
        assert!(p.cycles > 0.0);
        assert!(p.cpi() > 0.25, "CPI below width limit: {}", p.cpi());
        assert!((p.cpi_stack.total() - p.cpi()).abs() < 1e-6);
        assert_eq!(p.windows.len(), 8);
        assert!(p.mlp >= 1.0);
    }

    #[test]
    fn memory_bound_workload_has_dram_component() {
        let p = predict("mcf", 40_000);
        assert!(
            p.cpi_stack.get(CpiComponent::Dram) > 0.2,
            "mcf DRAM: {:?}",
            p.cpi_stack
        );
    }

    #[test]
    fn namd_stack_shape_tracks_simulator() {
        // At short horizons even namd is cold-miss dominated (thesis
        // Fig 4.4); what matters is that the model's component shares
        // track the simulator's.
        let p = predict("namd", 40_000);
        let s = simulate("namd", 40_000);
        let m_base = p.cpi_stack.get(CpiComponent::Base) / p.cpi();
        let s_base = s.cpi_stack.get(CpiComponent::Base) / s.cpi();
        assert!(
            (m_base - s_base).abs() < 0.25,
            "base share: model {m_base} vs sim {s_base}"
        );
        let m_dram = p.cpi_stack.get(CpiComponent::Dram) / p.cpi();
        let s_dram = s.cpi_stack.get(CpiComponent::Dram) / s.cpi();
        assert!(
            (m_dram - s_dram).abs() < 0.3,
            "DRAM share: model {m_dram} vs sim {s_dram}"
        );
    }

    #[test]
    fn model_tracks_simulator_ranking() {
        // Relative accuracy: the model must order a memory-bound and a
        // compute-bound workload like the simulator does.
        let m_mcf = predict("mcf", 40_000);
        let m_namd = predict("namd", 40_000);
        let s_mcf = simulate("mcf", 40_000);
        let s_namd = simulate("namd", 40_000);
        assert!(s_mcf.cpi() > s_namd.cpi());
        assert!(
            m_mcf.cpi() > m_namd.cpi(),
            "model ranking: mcf {} vs namd {}",
            m_mcf.cpi(),
            m_namd.cpi()
        );
    }

    #[test]
    fn model_is_within_2x_of_simulator_for_compute_code() {
        for name in ["hmmer", "namd", "gamess"] {
            let m = predict(name, 40_000);
            let s = simulate(name, 40_000);
            let ratio = m.cpi() / s.cpi();
            assert!(
                ratio > 0.5 && ratio < 2.0,
                "{name}: model {} vs sim {}",
                m.cpi(),
                s.cpi()
            );
        }
    }

    #[test]
    fn wider_machine_predicts_fewer_cycles() {
        let profile = profile_of("h264ref", 40_000);
        let narrow = {
            let mut m = MachineConfig::nehalem();
            m.core = m.core.with_dispatch_width(2).with_rob(64);
            IntervalModel::new(&m).predict(&profile)
        };
        let wide = IntervalModel::new(&MachineConfig::nehalem()).predict(&profile);
        assert!(
            wide.cycles < narrow.cycles,
            "wide {} vs narrow {}",
            wide.cycles,
            narrow.cycles
        );
    }

    #[test]
    fn bigger_llc_predicts_fewer_dram_misses() {
        let profile = profile_of("astar", 40_000);
        let small = {
            let mut m = MachineConfig::nehalem();
            m.caches.l3 = pmt_uarch::CacheConfig::new(1024, 16, 64, 26);
            IntervalModel::new(&m).predict(&profile)
        };
        let big = IntervalModel::new(&MachineConfig::nehalem()).predict(&profile);
        assert!(
            big.cpi_stack.get(CpiComponent::Dram) <= small.cpi_stack.get(CpiComponent::Dram),
            "big {:?} vs small {:?}",
            big.cpi_stack,
            small.cpi_stack
        );
    }

    #[test]
    fn combined_mode_gives_one_window() {
        let profile = profile_of("bzip2", 40_000);
        let p = IntervalModel::with_config(&MachineConfig::nehalem(), ModelConfig::ispass_2015())
            .predict(&profile);
        assert_eq!(p.windows.len(), 1);
        assert!(p.cycles > 0.0);
    }

    #[test]
    fn activity_factors_are_filled() {
        let p = predict("gcc", 40_000);
        let a = &p.activity;
        assert!(a.uops > 0.0);
        assert!(a.l1d_accesses > 0.0);
        assert!(a.l2_accesses <= a.l1d_accesses + a.l1i_accesses);
        assert!(a.dram_accesses >= 0.0);
        assert!(a.branch_lookups > 0.0);
        assert!((a.cycles - p.cycles).abs() < 1e-6);
    }

    #[test]
    fn per_sample_evaluation_sees_phases() {
        let p = predict("gcc", 100_000);
        let cpis: Vec<f64> = p.windows.iter().map(|w| w.cpi()).collect();
        let min = cpis.iter().cloned().fold(f64::MAX, f64::min);
        let max = cpis.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min * 1.2, "gcc phases should vary: {cpis:?}");
    }

    #[test]
    fn prefetcher_reduces_predicted_stalls() {
        let profile = profile_of("libquantum", 60_000);
        let without = IntervalModel::new(&MachineConfig::nehalem()).predict(&profile);
        let with = IntervalModel::new(&MachineConfig::nehalem_with_prefetcher()).predict(&profile);
        assert!(
            with.cpi_stack.get(CpiComponent::Dram) < without.cpi_stack.get(CpiComponent::Dram),
            "with {:?} vs without {:?}",
            with.cpi_stack,
            without.cpi_stack
        );
    }
}

//! Branch misprediction penalty (thesis §3.5): the number of mispredicts
//! comes from linear branch entropy; the resolution time from the
//! leaky-bucket algorithm (Alg 3.2).

use pmt_profiler::DependenceProfile;
use serde::{Deserialize, Serialize};

/// Resolution + refill penalty for one misprediction interval.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BranchPenalty {
    /// Branch resolution time `c_res` in cycles.
    pub resolution: f64,
    /// Front-end refill time `c_fe` in cycles.
    pub refill: f64,
}

impl BranchPenalty {
    /// Total penalty per misprediction.
    pub fn total(&self) -> f64 {
        self.resolution + self.refill
    }
}

/// The leaky-bucket algorithm of thesis Alg 3.2.
///
/// Fills the ROB at the dispatch width while draining it at the average
/// number of independent instructions `I(ROB) = ROB/(lat·CP(ROB))` per
/// cycle, until the `interval_uops` of one misprediction interval have
/// been dispatched; the resolution time is then the average instruction
/// latency times the average branch path of the *occupied* ROB fraction.
pub fn branch_resolution_time(
    deps: &DependenceProfile,
    rob_size: u32,
    dispatch_width: u32,
    interval_uops: f64,
    avg_latency: f64,
) -> f64 {
    let rob = rob_size as f64;
    let d = dispatch_width as f64;
    let mut remaining = interval_uops.max(1.0);
    let mut occupancy: f64 = 0.0;

    // Guard against degenerate profiles.
    let cp_full = deps.cp(rob_size).max(1.0);
    let drain_full = (rob / (avg_latency.max(0.1) * cp_full)).max(0.1);

    let max_iters = 100_000;
    let mut iters = 0;
    while remaining > d && iters < max_iters {
        // Fill.
        if occupancy + d <= rob {
            remaining -= d;
            occupancy += d;
        } else {
            remaining -= rob - occupancy;
            occupancy = rob;
        }
        // Drain at I(ROB_i).
        let occ_rounded = (occupancy.round() as u32).max(1);
        let cp_i = deps.cp(occ_rounded).max(1.0);
        let drain = (occupancy / (avg_latency.max(0.1) * cp_i))
            .min(d)
            .max(drain_full.min(d).min(occupancy));
        occupancy = (occupancy - drain).max(0.0);
        iters += 1;
    }

    // The branch resolves against the ABP of the instructions still in
    // flight (Alg 3.2 last line).
    let occ_rounded = (occupancy.round() as u32).max(1);
    avg_latency * deps.abp(occ_rounded).max(1.0)
}

/// Assemble the full penalty.
pub fn branch_penalty(
    deps: &DependenceProfile,
    rob_size: u32,
    dispatch_width: u32,
    frontend_depth: u32,
    interval_uops: f64,
    avg_latency: f64,
) -> BranchPenalty {
    BranchPenalty {
        resolution: branch_resolution_time(
            deps,
            rob_size,
            dispatch_width,
            interval_uops,
            avg_latency,
        ),
        refill: frontend_depth as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmt_profiler::DependenceProfile;
    use pmt_trace::{MicroOp, UopClass};

    fn profile_with_chains(serial: bool) -> DependenceProfile {
        let uops: Vec<MicroOp> = (0..2048)
            .map(|i| {
                let mut u = if i % 7 == 0 {
                    MicroOp::branch(i * 4, 0, true)
                } else {
                    MicroOp::compute(UopClass::IntAlu, i * 4, 0)
                };
                if serial && i > 0 {
                    u.dep1 = 1;
                }
                u
            })
            .collect();
        DependenceProfile::profile(&uops, &[16, 32, 64, 128, 256])
    }

    #[test]
    fn serial_code_has_longer_resolution() {
        let serial = profile_with_chains(true);
        let parallel = profile_with_chains(false);
        let r_serial = branch_resolution_time(&serial, 128, 4, 1000.0, 1.0);
        let r_parallel = branch_resolution_time(&parallel, 128, 4, 1000.0, 1.0);
        assert!(
            r_serial > r_parallel,
            "serial {r_serial} vs parallel {r_parallel}"
        );
    }

    #[test]
    fn resolution_scales_with_latency() {
        let p = profile_with_chains(true);
        let r1 = branch_resolution_time(&p, 128, 4, 1000.0, 1.0);
        let r2 = branch_resolution_time(&p, 128, 4, 1000.0, 2.0);
        assert!(r2 > r1);
    }

    #[test]
    fn penalty_includes_refill() {
        let p = profile_with_chains(false);
        let pen = branch_penalty(&p, 128, 4, 5, 1000.0, 1.0);
        assert!((pen.refill - 5.0).abs() < 1e-12);
        assert!(pen.total() > 5.0);
    }

    #[test]
    fn short_intervals_leave_emptier_robs() {
        // Frequent mispredictions never fill the ROB, so the branch path
        // is evaluated at a smaller occupancy.
        let p = profile_with_chains(true);
        let frequent = branch_resolution_time(&p, 256, 4, 40.0, 1.0);
        let rare = branch_resolution_time(&p, 256, 4, 100_000.0, 1.0);
        assert!(frequent <= rare, "frequent {frequent} vs rare {rare}");
    }

    #[test]
    fn terminates_on_degenerate_input() {
        let p = profile_with_chains(false);
        let r = branch_resolution_time(&p, 16, 1, 1e9, 0.0);
        assert!(r.is_finite());
    }
}

//! The micro-architecture independent interval model — the paper's primary
//! contribution (thesis Ch 3–4; Eq 3.1):
//!
//! ```text
//! C = N/D_eff + m_bp·(c_res + c_fe) + Σ_i m_ILi·c_Li+1
//!     + m_LLC·(c_mem + c_bus)/MLP + P_hLLC
//! ```
//!
//! Every input is computed from a single micro-architecture independent
//! [`ApplicationProfile`](pmt_profiler::ApplicationProfile) plus a
//! [`MachineConfig`](pmt_uarch::MachineConfig) — no per-configuration
//! simulation:
//!
//! * **Base**: μops over the *effective dispatch rate* (Eq 3.10), limited
//!   by the physical width, the critical dependence path, issue-port
//!   scheduling and (non-)pipelined functional units ([`dispatch`]),
//! * **Branch**: misprediction count from linear branch entropy, penalty
//!   from the leaky-bucket resolution algorithm (Alg 3.2, [`branch_penalty`]),
//! * **Caches**: per-level miss rates from StatStack ([`cache_model`]),
//! * **Memory**: two MLP models — the cold-miss model (Eq 4.1–4.3) and the
//!   stride model over a rebuilt virtual instruction stream (§4.5) — plus
//!   MSHR soft-capping (Eq 4.4), memory-bus queuing (Eq 4.5–4.6), LLC-hit
//!   chaining (Eq 4.7–4.12) and stride-prefetch timeliness (Eq 4.13),
//! * **Power**: predicted activity factors (Eq 3.16) for the power model.
//!
//! The model is evaluated *per micro-trace* and combined (the TC'16
//! insight), or on the combined profile (the ISPASS'15 variant) — see
//! [`EvaluationMode`].
//!
//! The machine-independent half of an evaluation — fitting every
//! StatStack model, class counts, entropy fallbacks, virtual-stream
//! skeletons — is hoisted into [`PreparedProfile`]: **prepare once,
//! predict many**. [`IntervalModel::predict_prepared`] and the
//! sweep-oriented [`IntervalModel::predict_summary`] evaluate any number
//! of machine configurations against one preparation, bit-identical to
//! [`IntervalModel::predict`] (which wraps them).
//!
//! # Example
//!
//! ```
//! use pmt_core::{IntervalModel, ModelConfig};
//! use pmt_profiler::{Profiler, ProfilerConfig};
//! use pmt_uarch::MachineConfig;
//! use pmt_workloads::WorkloadSpec;
//!
//! let spec = WorkloadSpec::by_name("astar").unwrap();
//! let profile = Profiler::new(ProfilerConfig::fast_test())
//!     .profile_named("astar", &mut spec.trace(50_000));
//! let prediction = IntervalModel::new(&MachineConfig::nehalem()).predict(&profile);
//! assert!(prediction.cpi() > 0.25);
//! ```

pub mod branch_penalty;
pub mod cache_model;
mod config;
pub mod dispatch;
pub mod kernels;
pub mod llc_chaining;
pub mod mlp;
mod model;
mod moments;
pub mod multicore;
mod prepared;
pub mod smt;

pub use config::{EvaluationMode, MlpModelKind, ModelConfig};
pub use kernels::{BatchPredictor, MemoStats};
pub use model::{IntervalModel, Prediction, PredictionSummary, WindowPrediction};
pub use moments::Moments;
pub use multicore::{CorePrediction, CorunPrediction, MulticoreModel};
pub use prepared::PreparedProfile;
pub use smt::{SmtModel, SmtPrediction, ThreadPrediction};

//! Cache miss-rate derivation from reuse-distance profiles via StatStack
//! (thesis §4.2): each level of the inclusive hierarchy is modeled
//! independently as a fully-associative LRU cache of the same capacity.
//!
//! Fitting the [`StackDistanceModel`] is machine-*independent* (it only
//! reads the reuse histogram); evaluating it for a concrete hierarchy is
//! machine-*dependent* but cheap (a handful of binary searches). The two
//! steps are split so [`crate::PreparedProfile`] can fit once and every
//! design point pays only for [`CacheModel::from_fitted`].

use pmt_statstack::{ReuseHistogram, StackDistanceModel};
use pmt_uarch::CacheHierarchy;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Per-level miss ratios for one access type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MissRatios {
    /// L1 miss ratio.
    pub l1: f64,
    /// L2 miss ratio (per access, not per L1 miss).
    pub l2: f64,
    /// L3 miss ratio (per access).
    pub l3: f64,
}

impl MissRatios {
    /// Fraction of accesses that hit exactly in L2.
    pub fn l2_hit(&self) -> f64 {
        (self.l1 - self.l2).max(0.0)
    }

    /// Fraction of accesses that hit exactly in L3 (the "LLC hits" feeding
    /// the chaining penalty, §4.8).
    pub fn l3_hit(&self) -> f64 {
        (self.l2 - self.l3).max(0.0)
    }
}

/// The fitted per-level cache model for one access type.
#[derive(Clone, Debug)]
pub struct CacheModel {
    model: Arc<StackDistanceModel>,
    /// Critical reuse distances per data level.
    pub critical_rd: [u64; 3],
    /// Miss ratios per level.
    pub ratios: MissRatios,
    /// Cold-access fraction, cached off the model.
    cold_fraction: f64,
}

impl CacheModel {
    /// Per-level line counts seen by data accesses (L1-D, L2, L3).
    pub fn data_lines(caches: &CacheHierarchy) -> [u64; 3] {
        [caches.l1d.lines(), caches.l2.lines(), caches.l3.lines()]
    }

    /// Per-level line counts seen by instruction fetches (L1-I geometry,
    /// then the shared L2/L3).
    pub fn inst_lines(caches: &CacheHierarchy) -> [u64; 3] {
        [caches.l1i.lines(), caches.l2.lines(), caches.l3.lines()]
    }

    /// Fit StatStack to a reuse histogram and evaluate it for a hierarchy.
    pub fn fit(hist: &ReuseHistogram, caches: &CacheHierarchy) -> CacheModel {
        Self::from_fitted(
            &Arc::new(StackDistanceModel::from_reuse(hist)),
            Self::data_lines(caches),
        )
    }

    /// Fit for the instruction path (L1-I geometry, then shared L2/L3).
    pub fn fit_inst(hist: &ReuseHistogram, caches: &CacheHierarchy) -> CacheModel {
        Self::from_fitted(
            &Arc::new(StackDistanceModel::from_reuse(hist)),
            Self::inst_lines(caches),
        )
    }

    /// Evaluate an already-fitted StatStack model for a hierarchy given as
    /// per-level line counts. This is the machine-dependent step only —
    /// six binary searches, no allocation beyond a refcount bump — and is
    /// what the prepared-profile fast path calls per design point.
    pub fn from_fitted(model: &Arc<StackDistanceModel>, lines: [u64; 3]) -> CacheModel {
        let critical_rd = [
            model.critical_reuse_distance(lines[0]),
            model.critical_reuse_distance(lines[1]),
            model.critical_reuse_distance(lines[2]),
        ];
        let ratios = MissRatios {
            l1: model.miss_ratio(lines[0]),
            l2: model.miss_ratio(lines[1]),
            l3: model.miss_ratio(lines[2]),
        };
        CacheModel {
            critical_rd,
            ratios,
            cold_fraction: model.cold_fraction(),
            model: Arc::clone(model),
        }
    }

    /// Assemble a model from precomputed query results. The batched
    /// kernels answer the six searches of
    /// [`from_fitted`](Self::from_fitted) against their flat SoA curve
    /// storage (with memoization across design points) and hand the
    /// results back through here; the values must be exactly what
    /// `from_fitted` would have produced for the same `model`/lines.
    pub(crate) fn from_parts(
        model: &Arc<StackDistanceModel>,
        critical_rd: [u64; 3],
        ratios: MissRatios,
        cold_fraction: f64,
    ) -> CacheModel {
        CacheModel {
            critical_rd,
            ratios,
            cold_fraction,
            model: Arc::clone(model),
        }
    }

    /// The underlying StatStack model.
    pub fn stack_model(&self) -> &StackDistanceModel {
        &self.model
    }

    /// Cold-access fraction of the fitted histogram.
    pub fn cold_fraction(&self) -> f64 {
        self.cold_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmt_statstack::ReuseRecorder;
    use pmt_uarch::CacheHierarchy;

    fn hist_of_cycle(lines: u64, touches: u64) -> ReuseHistogram {
        let mut rec = ReuseRecorder::new();
        for i in 0..touches {
            rec.record(i % lines);
        }
        rec.histogram().clone()
    }

    #[test]
    fn l1_resident_set_has_no_misses() {
        // 256 lines (16 KB of 64 B lines) cycled: fits the 32 KB L1.
        let hist = hist_of_cycle(256, 100_000);
        let m = CacheModel::fit(&hist, &CacheHierarchy::nehalem());
        assert!(m.ratios.l1 < 0.02, "{:?}", m.ratios);
        assert!(m.ratios.l3 < 0.02);
    }

    #[test]
    fn l2_resident_set_misses_l1_only() {
        // 2048 lines = 128 KB: misses L1 (512 lines), fits L2 (4096).
        let hist = hist_of_cycle(2048, 300_000);
        let m = CacheModel::fit(&hist, &CacheHierarchy::nehalem());
        assert!(m.ratios.l1 > 0.9, "{:?}", m.ratios);
        assert!(m.ratios.l2 < 0.05, "{:?}", m.ratios);
    }

    #[test]
    fn dram_set_misses_everywhere() {
        // 262144 lines = 16 MB: beyond the 8 MB L3.
        let hist = hist_of_cycle(262_144, 600_000);
        let m = CacheModel::fit(&hist, &CacheHierarchy::nehalem());
        assert!(m.ratios.l3 > 0.9, "{:?}", m.ratios);
    }

    #[test]
    fn ratios_are_monotone_down_the_hierarchy() {
        let hist = hist_of_cycle(5_000, 200_000);
        let m = CacheModel::fit(&hist, &CacheHierarchy::nehalem());
        assert!(m.ratios.l1 >= m.ratios.l2);
        assert!(m.ratios.l2 >= m.ratios.l3);
        assert!(m.critical_rd[0] <= m.critical_rd[1]);
        assert!(m.critical_rd[1] <= m.critical_rd[2]);
    }

    #[test]
    fn l2_l3_hit_fractions() {
        let r = MissRatios {
            l1: 0.5,
            l2: 0.3,
            l3: 0.1,
        };
        assert!((r.l2_hit() - 0.2).abs() < 1e-12);
        assert!((r.l3_hit() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn from_fitted_matches_fit_for_every_hierarchy() {
        // The split fit — shared model, per-machine evaluation — must be
        // indistinguishable from refitting at every machine.
        let hist = hist_of_cycle(3_000, 150_000);
        let shared = Arc::new(StackDistanceModel::from_reuse(&hist));
        let caches = CacheHierarchy::nehalem();
        for lines in [
            CacheModel::data_lines(&caches),
            CacheModel::inst_lines(&caches),
        ] {
            let refit =
                CacheModel::from_fitted(&Arc::new(StackDistanceModel::from_reuse(&hist)), lines);
            let fast = CacheModel::from_fitted(&shared, lines);
            assert_eq!(refit.ratios, fast.ratios);
            assert_eq!(refit.critical_rd, fast.critical_rd);
            assert_eq!(
                refit.cold_fraction().to_bits(),
                fast.cold_fraction().to_bits()
            );
        }
    }
}

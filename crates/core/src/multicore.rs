//! Multi-core extension (thesis §8.2.1 — listed as future work).
//!
//! Co-running workloads interact through the shared last-level cache and
//! the memory bus. This module extends the single-core interval model with
//! a fixed-point contention model:
//!
//! 1. every core is first predicted with the full shared LLC,
//! 2. the LLC is partitioned in proportion to each core's *L2-miss
//!    intensity* (accesses flowing into the LLC per cycle — the quantity
//!    that drives natural LRU sharing),
//! 3. each core is re-predicted with its effective LLC share, and the
//!    memory bus transfer time is inflated by the co-runners' DRAM traffic,
//! 4. repeat until the partition stabilizes.
//!
//! The result preserves the framework's key property: co-schedule
//! exploration from the same single-core profiles, with no multi-core
//! simulation.

use crate::config::ModelConfig;
use crate::model::{IntervalModel, Prediction};
use crate::prepared::PreparedProfile;
use pmt_profiler::ApplicationProfile;
use pmt_uarch::MachineConfig;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Prediction for one co-scheduled core.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CorePrediction {
    /// The core's workload name.
    pub workload: String,
    /// Prediction under contention.
    pub shared: Prediction,
    /// Prediction running alone on the same machine.
    pub solo: Prediction,
    /// Effective LLC capacity share in [0, 1].
    pub llc_share: f64,
}

impl CorePrediction {
    /// Slowdown versus running alone (≥ 1).
    pub fn slowdown(&self) -> f64 {
        if self.solo.cycles > 0.0 {
            self.shared.cycles / self.solo.cycles
        } else {
            1.0
        }
    }
}

/// The co-run prediction for all cores.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CorunPrediction {
    /// Per-core outcomes, in input order.
    pub cores: Vec<CorePrediction>,
    /// Fixed-point iterations used.
    pub iterations: u32,
}

impl CorunPrediction {
    /// System throughput: Σ IPC under contention.
    pub fn throughput_ipc(&self) -> f64 {
        self.cores.iter().map(|c| c.shared.ipc()).sum()
    }

    /// Average per-core slowdown.
    pub fn mean_slowdown(&self) -> f64 {
        if self.cores.is_empty() {
            return 1.0;
        }
        self.cores.iter().map(|c| c.slowdown()).sum::<f64>() / self.cores.len() as f64
    }
}

/// The multi-core interval model.
#[derive(Clone, Debug)]
pub struct MulticoreModel {
    machine: MachineConfig,
    config: ModelConfig,
    max_iterations: u32,
}

impl MulticoreModel {
    /// A model for `machine`, whose L3 is shared by all co-scheduled cores.
    pub fn new(machine: &MachineConfig, config: ModelConfig) -> MulticoreModel {
        MulticoreModel {
            machine: machine.clone(),
            config,
            max_iterations: 4,
        }
    }

    /// Predict a co-schedule of one workload per core.
    ///
    /// # Panics
    ///
    /// Panics when `profiles` is empty.
    pub fn predict(&self, profiles: &[&ApplicationProfile]) -> CorunPrediction {
        assert!(!profiles.is_empty(), "empty co-schedule");
        let n = profiles.len();
        let solo_model = IntervalModel::with_config(&self.machine, self.config.clone());
        // Prepare once per core (rayon-parallel, order-preserving): every
        // fixed-point iteration re-predicts with a different effective
        // machine, but the machine-independent fits never change.
        let prepared: Vec<PreparedProfile<'_>> = profiles
            .par_iter()
            .map(|p| PreparedProfile::new(p))
            .collect();
        // Each core's solo prediction is independent; fan out with rayon
        // (collect preserves input order, so results stay deterministic).
        let solos: Vec<Prediction> = prepared
            .par_iter()
            .map(|pp| solo_model.predict_prepared(pp))
            .collect();
        if n == 1 {
            return CorunPrediction {
                cores: vec![CorePrediction {
                    workload: profiles[0].name.clone(),
                    shared: solos[0].clone(),
                    solo: solos[0].clone(),
                    llc_share: 1.0,
                }],
                iterations: 0,
            };
        }

        // Fixed point on LLC shares, seeded by the solo LLC intensities.
        let mut shares = self.shares_from(&solos);
        let mut shared: Vec<Prediction> = Vec::new();
        let mut iterations = 0;
        for _ in 0..self.max_iterations {
            iterations += 1;
            // Within one fixed-point step the cores only read the previous
            // iteration's shares, so the re-predictions are independent too.
            let jobs: Vec<(&PreparedProfile<'_>, f64)> =
                prepared.iter().zip(shares.iter().copied()).collect();
            shared = jobs
                .par_iter()
                .map(|&(pp, share)| self.predict_with_share(pp, share, &solos, n))
                .collect();
            let new_shares = self.shares_from(&shared);
            let delta: f64 = shares
                .iter()
                .zip(&new_shares)
                .map(|(a, b)| (a - b).abs())
                .sum();
            shares = new_shares;
            if delta < 0.01 {
                break;
            }
        }

        CorunPrediction {
            cores: profiles
                .iter()
                .zip(shared)
                .zip(&shares)
                .map(|((p, s), &share)| CorePrediction {
                    workload: p.name.clone(),
                    shared: s,
                    solo: solos[profiles.iter().position(|q| q.name == p.name).unwrap()].clone(),
                    llc_share: share,
                })
                .collect(),
            iterations,
        }
    }

    /// LLC shares proportional to each core's LLC-access intensity
    /// (L2 misses per cycle — what actually competes for LRU residency).
    fn shares_from(&self, predictions: &[Prediction]) -> Vec<f64> {
        let intensity: Vec<f64> = predictions
            .iter()
            .map(|p| {
                let accesses = p.activity.l3_accesses.max(1.0);
                accesses / p.cycles.max(1.0)
            })
            .collect();
        let total: f64 = intensity.iter().sum();
        intensity
            .iter()
            .map(|i| (i / total).clamp(0.05, 0.95))
            .collect()
    }

    /// Re-predict one core with a scaled effective LLC and a bus slowed by
    /// the co-runners.
    fn predict_with_share(
        &self,
        prepared: &PreparedProfile<'_>,
        share: f64,
        solos: &[Prediction],
        n_cores: usize,
    ) -> Prediction {
        let mut m = self.machine.clone();
        let scaled_kb = ((m.caches.l3.size_kb as f64 * share) as u32).max(m.caches.l2.size_kb * 2);
        m.caches.l3 = pmt_uarch::CacheConfig::new(
            scaled_kb,
            m.caches.l3.associativity,
            m.caches.l3.line_bytes,
            m.caches.l3.latency,
        );
        // Bus contention: the line transfer time stretches with total DRAM
        // pressure. A simple M/D/1-flavoured inflation bounded by the core
        // count keeps the model stable.
        let solo_dram_per_cycle: f64 = solos
            .iter()
            .map(|p| p.activity.dram_accesses / p.cycles.max(1.0))
            .sum();
        let util =
            (solo_dram_per_cycle * m.mem.bus_transfer_cycles as f64).min(0.95 * n_cores as f64);
        let inflation = (1.0 + util).min(n_cores as f64);
        m.mem.bus_transfer_cycles = ((m.mem.bus_transfer_cycles as f64) * inflation).round() as u32;
        IntervalModel::with_config(&m, self.config.clone()).predict_prepared(prepared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmt_profiler::{Profiler, ProfilerConfig};
    use pmt_workloads::WorkloadSpec;

    fn profile(name: &str) -> ApplicationProfile {
        let spec = WorkloadSpec::by_name(name).unwrap();
        Profiler::new(ProfilerConfig::fast_test()).profile_named(name, &mut spec.trace(40_000))
    }

    fn model() -> MulticoreModel {
        MulticoreModel::new(&MachineConfig::nehalem(), ModelConfig::default())
    }

    #[test]
    fn single_core_equals_solo() {
        let p = profile("astar");
        let out = model().predict(&[&p]);
        assert_eq!(out.cores.len(), 1);
        assert!((out.cores[0].slowdown() - 1.0).abs() < 1e-12);
        assert_eq!(out.cores[0].llc_share, 1.0);
    }

    #[test]
    fn corunning_never_speeds_anyone_up() {
        let a = profile("milc");
        let b = profile("mcf");
        let out = model().predict(&[&a, &b]);
        for c in &out.cores {
            assert!(
                c.slowdown() >= 0.999,
                "{} sped up under contention: {}",
                c.workload,
                c.slowdown()
            );
        }
    }

    #[test]
    fn memory_pairs_hurt_more_than_compute_pairs() {
        let mem = model().predict(&[&profile("milc"), &profile("mcf")]);
        let cpu = model().predict(&[&profile("hmmer"), &profile("namd")]);
        assert!(
            mem.mean_slowdown() > cpu.mean_slowdown(),
            "memory pair {} vs compute pair {}",
            mem.mean_slowdown(),
            cpu.mean_slowdown()
        );
    }

    #[test]
    fn llc_shares_sum_to_about_one() {
        let a = profile("soplex");
        let b = profile("gcc");
        let out = model().predict(&[&a, &b]);
        let total: f64 = out.cores.iter().map(|c| c.llc_share).sum();
        assert!((0.8..=1.2).contains(&total), "{total}");
    }

    #[test]
    fn cache_hog_takes_the_larger_share() {
        let hog = profile("mcf"); // LLC-intense
        let mouse = profile("hmmer"); // cache-resident
        let out = model().predict(&[&hog, &mouse]);
        assert!(
            out.cores[0].llc_share > out.cores[1].llc_share,
            "{:?}",
            out.cores.iter().map(|c| c.llc_share).collect::<Vec<_>>()
        );
    }

    #[test]
    fn four_way_corun_is_worse_than_two_way() {
        let p = profile("libquantum");
        let two = model().predict(&[&p, &p]);
        let four = model().predict(&[&p, &p, &p, &p]);
        assert!(four.mean_slowdown() >= two.mean_slowdown() * 0.99);
    }

    #[test]
    fn throughput_is_positive_and_bounded() {
        let a = profile("wrf");
        let b = profile("bzip2");
        let out = model().predict(&[&a, &b]);
        let t = out.throughput_ipc();
        assert!(t > 0.0 && t < 8.0, "{t}");
    }
}

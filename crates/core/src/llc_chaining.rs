//! The chained-LLC-hit penalty (thesis §4.8, Eqs 4.7–4.12).
//!
//! Out-of-order execution hides load latencies shorter than the ROB fill
//! time — except when several LLC hits sit on the *same* dependence path,
//! where their serialized latencies exceed what the window can hide.

use pmt_profiler::LoadDependenceDistribution;
use serde::{Deserialize, Serialize};

/// Inputs to the chaining penalty.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChainInputs {
    /// LLC hits per ROB window: `h_LLC(ROB)` (loads that miss L2, hit L3).
    pub llc_hits_per_rob: f64,
    /// Loads per ROB window: `L̄(ROB)`.
    pub loads_per_rob: f64,
    /// Fraction of loads heading a dependence path: `f(1)`.
    pub independent_load_fraction: f64,
    /// LLC hit latency `c_LLC` in cycles.
    pub llc_latency: f64,
    /// ROB size in μops.
    pub rob: f64,
    /// Effective dispatch rate.
    pub deff: f64,
}

impl ChainInputs {
    /// Assemble from a load-dependence distribution.
    pub fn from_distribution(
        f: &LoadDependenceDistribution,
        llc_hit_ratio: f64,
        loads_per_rob: f64,
        llc_latency: f64,
        rob: f64,
        deff: f64,
    ) -> ChainInputs {
        ChainInputs {
            llc_hits_per_rob: llc_hit_ratio * loads_per_rob,
            loads_per_rob,
            independent_load_fraction: f.independent_fraction().max(1e-3),
            llc_latency,
            rob,
            deff: deff.max(1e-3),
        }
    }
}

/// Penalty per ROB window of instructions (Eq 4.11).
pub fn chain_penalty_per_window(inp: &ChainInputs) -> f64 {
    if inp.llc_hits_per_rob <= 0.0 || inp.loads_per_rob <= 0.0 {
        return 0.0;
    }
    // Number of load dependence paths (Eq: p_load = f(1)·L̄).
    let paths = (inp.independent_load_fraction * inp.loads_per_rob).max(1e-6);
    // Average loads per path.
    let loads_per_path = inp.loads_per_rob / paths;
    // Eq 4.7: average LLC hits per path.
    let lhc_avg = inp.llc_hits_per_rob / paths;
    // Eq 4.8: longest chain bound.
    let lhc_max = inp.llc_hits_per_rob.min(loads_per_path);
    // Eq 4.9: expected longest chain.
    let lhc_exp = lhc_avg + (lhc_max - lhc_avg).max(0.0) / paths.max(1.0);
    // Eq 4.10: serialized latency of the chain.
    let serialized = inp.llc_latency * lhc_exp;
    // Eq 4.11: only the part the window cannot hide is a penalty.
    (serialized - inp.rob / inp.deff).max(0.0)
}

/// Total penalty over a stream of `total_uops` (Eq 4.12).
pub fn chain_penalty_total(inp: &ChainInputs, total_uops: f64) -> f64 {
    if inp.rob <= 0.0 {
        return 0.0;
    }
    chain_penalty_per_window(inp) * (total_uops / inp.rob)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_inputs() -> ChainInputs {
        ChainInputs {
            llc_hits_per_rob: 8.0,
            loads_per_rob: 32.0,
            independent_load_fraction: 0.25,
            llc_latency: 30.0,
            rob: 128.0,
            deff: 4.0,
        }
    }

    #[test]
    fn few_hits_no_penalty() {
        let mut inp = base_inputs();
        inp.llc_hits_per_rob = 1.0;
        // One hit: 30 cycles < 32-cycle fill time → hidden.
        assert_eq!(chain_penalty_per_window(&inp), 0.0);
    }

    #[test]
    fn chained_hits_exceed_fill_time() {
        let inp = base_inputs();
        // paths = 8, loads/path = 4, LHC_avg = 1, LHC_max = 4,
        // LHC_exp = 1 + 3/8 = 1.375 → 41.25 cycles > 32 → penalty 9.25.
        let p = chain_penalty_per_window(&inp);
        assert!((p - 9.25).abs() < 1e-9, "{p}");
    }

    #[test]
    fn more_independence_means_less_penalty() {
        let mut chained = base_inputs();
        chained.independent_load_fraction = 0.05;
        let mut indep = base_inputs();
        indep.independent_load_fraction = 0.8;
        assert!(
            chain_penalty_per_window(&chained) > chain_penalty_per_window(&indep),
            "chained {} vs indep {}",
            chain_penalty_per_window(&chained),
            chain_penalty_per_window(&indep)
        );
    }

    #[test]
    fn bigger_rob_hides_more() {
        let small = base_inputs();
        let mut big = base_inputs();
        big.rob = 256.0;
        assert!(chain_penalty_per_window(&big) <= chain_penalty_per_window(&small));
    }

    #[test]
    fn total_scales_with_stream_length() {
        let inp = base_inputs();
        let per = chain_penalty_per_window(&inp);
        let total = chain_penalty_total(&inp, 1280.0);
        assert!((total - per * 10.0).abs() < 1e-9);
    }

    #[test]
    fn gcc_like_scenario_produces_visible_component() {
        // Thesis Fig 4.9: an LLC-hit-heavy phase adds ~20% to the CPI.
        let inp = ChainInputs {
            llc_hits_per_rob: 12.0,
            loads_per_rob: 36.0,
            independent_load_fraction: 0.15,
            llc_latency: 30.0,
            rob: 128.0,
            deff: 3.0,
        };
        let p = chain_penalty_per_window(&inp);
        assert!(p > 10.0, "{p}");
    }
}

//! Model configuration.

use pmt_branch::EntropyMissModel;
use serde::{Deserialize, Serialize};

/// Which MLP model to use (thesis §4.4 vs §4.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MlpModelKind {
    /// The cold-miss MLP model (Eq 4.1–4.3): leans on cold-miss
    /// burstiness; best for short traces without warmup.
    ColdMiss,
    /// The stride MLP model (§4.5): rebuilds a virtual instruction stream
    /// from per-static-load distributions; required when cold misses are
    /// scarce and for prefetcher modeling.
    Stride,
}

/// Whether to evaluate the model per micro-trace or on the combined
/// profile (thesis §6.2.2 compares both; per-sample wins).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvaluationMode {
    /// One evaluation on the aggregate profile (ISPASS'15).
    Combined,
    /// Evaluate every micro-trace separately and sum (TC'16).
    PerMicroTrace,
}

/// Tunable model composition; the defaults are the thesis' best variant.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelConfig {
    /// MLP model choice.
    pub mlp_model: MlpModelKind,
    /// Evaluation granularity.
    pub evaluation: EvaluationMode,
    /// Include the LLC-hit chaining penalty (§4.8).
    pub llc_chaining: bool,
    /// Apply the MSHR soft cap to MLP (Eq 4.4).
    pub mshr_cap: bool,
    /// Include memory-bus queuing delay (Eq 4.5–4.6).
    pub bus_queuing: bool,
    /// Model the stride prefetcher when the machine has one (Eq 4.13).
    pub prefetch_model: bool,
    /// The entropy → miss-rate model (train via
    /// [`EntropyMissModel::train`]; the default is an untrained heuristic
    /// line).
    pub entropy_model: EntropyMissModel,
}

impl ModelConfig {
    /// The thesis' best variant: stride MLP, per-micro-trace evaluation,
    /// all refinements on.
    pub fn thesis_best() -> ModelConfig {
        ModelConfig {
            mlp_model: MlpModelKind::Stride,
            evaluation: EvaluationMode::PerMicroTrace,
            llc_chaining: true,
            mshr_cap: true,
            bus_queuing: true,
            prefetch_model: true,
            entropy_model: EntropyMissModel::untrained_default(),
        }
    }

    /// The ISPASS'15 variant: cold-miss MLP, combined evaluation.
    pub fn ispass_2015() -> ModelConfig {
        ModelConfig {
            mlp_model: MlpModelKind::ColdMiss,
            evaluation: EvaluationMode::Combined,
            ..Self::thesis_best()
        }
    }

    /// Builder-style MLP model override.
    pub fn with_mlp(mut self, kind: MlpModelKind) -> ModelConfig {
        self.mlp_model = kind;
        self
    }

    /// Builder-style evaluation override.
    pub fn with_evaluation(mut self, mode: EvaluationMode) -> ModelConfig {
        self.evaluation = mode;
        self
    }

    /// Builder-style entropy-model override.
    pub fn with_entropy_model(mut self, model: EntropyMissModel) -> ModelConfig {
        self.entropy_model = model;
        self
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self::thesis_best()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_thesis_best() {
        let c = ModelConfig::default();
        assert_eq!(c.mlp_model, MlpModelKind::Stride);
        assert_eq!(c.evaluation, EvaluationMode::PerMicroTrace);
        assert!(c.llc_chaining && c.mshr_cap && c.bus_queuing);
    }

    #[test]
    fn ispass_variant_differs() {
        let c = ModelConfig::ispass_2015();
        assert_eq!(c.mlp_model, MlpModelKind::ColdMiss);
        assert_eq!(c.evaluation, EvaluationMode::Combined);
    }
}

//! Memory-level parallelism models (thesis §4.3–4.6, §4.9).
//!
//! Two models estimate the average number of overlapping DRAM accesses:
//!
//! * [`cold_miss_mlp`] — Eqs 4.1–4.3: cold misses carry the burstiness,
//!   capacity/conflict misses spread uniformly,
//! * [`StrideMlpModel`] — §4.5: rebuild a *virtual instruction stream*
//!   from per-static-load spacing/stride/reuse distributions, mark misses,
//!   impose inter-load dependences, and step ROB-sized windows over it.
//!
//! Both respect the MSHR soft cap (Eq 4.4); the stride model additionally
//! estimates stride-prefetcher coverage and timeliness (Eq 4.13).

use crate::cache_model::CacheModel;
use pmt_profiler::{LoadDependenceDistribution, StaticLoadProfile, StrideCategory};
use pmt_uarch::MachineConfig;
use serde::{Deserialize, Serialize};

/// The memory behaviour of one evaluation window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryBehavior {
    /// Average overlapping DRAM loads while at least one is outstanding
    /// (≥ 1), after the MSHR cap.
    pub mlp: f64,
    /// LLC load misses in the window.
    pub llc_load_misses: f64,
    /// LLC load misses that actually stall the core (after prefetch
    /// hiding); ≤ `llc_load_misses`.
    pub stalling_load_misses: f64,
    /// LLC store misses in the window (bandwidth + power only).
    pub llc_store_misses: f64,
    /// Fraction of load misses covered by the prefetcher (0 without one).
    pub prefetch_coverage: f64,
    /// Fraction of ROB windows containing at least one LLC miss. Sparse
    /// misses (low density) have part of their latency hidden by window
    /// refill, and see no bus queuing.
    pub miss_window_density: f64,
}

/// Deterministic unit-interval hash (keeps the model reproducible without
/// an RNG).
#[inline]
fn unit_hash(a: u64, b: u64) -> f64 {
    let mut x = a ^ b.rotate_left(31) ^ 0x9E37_79B9_7F4A_7C15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Sample a dependence depth ℓ from f(ℓ) with a deterministic draw.
fn sample_depth(f: &LoadDependenceDistribution, draw: f64) -> usize {
    let mut acc = 0.0;
    for (l, p) in f.iter() {
        acc += p;
        if draw < acc {
            return l;
        }
    }
    1
}

/// The MSHR soft cap of Eq 4.4: the first `mshr` concurrent misses run in
/// parallel; the rest overlap only partially, waiting on a freed entry for
/// half a DRAM access on average.
pub fn mshr_soft_cap(raw_parallel: f64, mshr_entries: u32) -> f64 {
    let cap = mshr_entries as f64;
    if raw_parallel <= cap {
        return raw_parallel;
    }
    let waiting = raw_parallel - cap;
    // T_MSHRfree ≈ T_DRAM/2 ⇒ each waiting access contributes
    // (T_DRAM − T_DRAM/2)/T_DRAM = 0.5 of an overlap.
    cap + waiting * 0.5
}

/// The cold-miss MLP model (Eqs 4.1–4.3).
///
/// * `f` — inter-load dependence distribution,
/// * `m_llc` — overall LLC load miss *ratio* (probability a load misses),
/// * `cold_fraction_of_misses` — cold share of LLC misses,
/// * `mean_cold_per_rob` — average cold misses per ROB window containing
///   at least one (the burstiness carrier),
/// * `loads_per_rob` — L̄(ROB),
/// * `mshr_entries` — for the soft cap.
pub fn cold_miss_mlp(
    f: &LoadDependenceDistribution,
    m_llc: f64,
    cold_fraction_of_misses: f64,
    mean_cold_per_rob: f64,
    loads_per_rob: f64,
    mshr_entries: u32,
) -> f64 {
    if m_llc <= 0.0 {
        return 1.0;
    }
    let survive = |l: usize| (1.0 - m_llc).powi(l as i32 - 1);
    // Eq 4.1: independent cold misses per ROB.
    let mlp_cold: f64 = f
        .iter()
        .map(|(l, p)| survive(l) * mean_cold_per_rob * p)
        .sum();
    // Eq 4.2: capacity/conflict misses, spread uniformly.
    let m_cf = m_llc * (1.0 - cold_fraction_of_misses);
    let mlp_cf: f64 = f
        .iter()
        .map(|(l, p)| survive(l) * m_cf * loads_per_rob * p)
        .sum();
    // Eq 4.3: blend by miss-type share.
    let blended = cold_fraction_of_misses * mlp_cold + (1.0 - cold_fraction_of_misses) * mlp_cf;
    mshr_soft_cap(blended, mshr_entries).max(1.0)
}

/// One occurrence in the virtual instruction stream.
#[derive(Clone, Copy, Debug)]
struct VirtualLoad {
    position: u64,
    /// Index of the owning static load.
    owner: u32,
    /// Misses the LLC.
    misses_llc: bool,
    /// The miss is a first-ever touch (cold). Cold misses happen once and
    /// must not be extrapolated with the window weight.
    cold: bool,
    /// Dependence depth ℓ.
    depth: u8,
    /// Prefetch latency-hiding factor φ ∈ [0, 1]: 0 = fully hidden.
    stall_factor: f64,
}

/// One occurrence in the machine-independent stream skeleton.
#[derive(Clone, Copy, Debug)]
struct SkeletonLoad {
    position: u64,
    /// Index of the owning static load.
    owner: u32,
    /// Deterministic unit draw deciding whether this occurrence misses.
    miss_draw: f64,
    /// Pre-sampled dependence depth ℓ.
    depth: u8,
}

/// The micro-architecture independent skeleton of a micro-trace's virtual
/// instruction stream (§4.5).
///
/// Occurrence positions, the deterministic hash draws and the sampled
/// dependence depths are fixed by the application profile alone, so
/// [`crate::PreparedProfile`] builds this once per micro-trace; every
/// design point then only re-classifies each occurrence as hit/miss/cold
/// against that machine's critical reuse distance
/// ([`StrideMlpModel::evaluate_stream`]).
#[derive(Clone, Debug, Default)]
pub struct VirtualStream {
    entries: Vec<SkeletonLoad>,
    /// Length of the `static_loads` slice this skeleton was built from;
    /// `entries[..].owner` index into exactly that slice.
    owners: usize,
}

impl VirtualStream {
    /// Rebuild the stream skeleton from per-static-load profiles and the
    /// inter-load dependence distribution `f`, identical (ordering
    /// included) to the stream [`StrideMlpModel::evaluate`] builds inline.
    pub fn build(
        static_loads: &[StaticLoadProfile],
        f: &LoadDependenceDistribution,
        stream_uops: u64,
    ) -> VirtualStream {
        let mut entries: Vec<SkeletonLoad> = Vec::new();
        for (owner, load) in static_loads.iter().enumerate() {
            let spacing = load.mean_spacing.max(1.0);
            for k in 0..load.count {
                let position = load.first_pos as u64 + (k as f64 * spacing) as u64;
                if position >= stream_uops {
                    break;
                }
                let miss_draw = unit_hash(load.pc, k.wrapping_mul(2));
                let depth_draw = unit_hash(load.pc, k.wrapping_mul(2) + 1);
                entries.push(SkeletonLoad {
                    position,
                    owner: owner as u32,
                    miss_draw,
                    depth: sample_depth(f, depth_draw) as u8,
                });
            }
        }
        // Stable sort: occurrences at equal positions keep their
        // owner-major construction order, exactly like the inline build.
        entries.sort_by_key(|v| v.position);
        VirtualStream {
            entries,
            owners: static_loads.len(),
        }
    }

    /// Occurrences in the skeleton.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the skeleton is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The stride-MLP model (thesis §4.5): per-micro-trace virtual instruction
/// stream analysis.
pub struct StrideMlpModel<'a> {
    machine: &'a MachineConfig,
    /// Effective dispatch rate of the window (for prefetch timeliness).
    pub deff: f64,
}

impl<'a> StrideMlpModel<'a> {
    /// Create the model.
    pub fn new(machine: &'a MachineConfig, deff: f64) -> StrideMlpModel<'a> {
        StrideMlpModel { machine, deff }
    }

    /// Evaluate a micro-trace.
    ///
    /// * `static_loads` — per-static-load profiles from the profiler,
    /// * `loads_model` — the window's fitted cache model (for critical
    ///   reuse distances),
    /// * `f` — inter-load dependence distribution,
    /// * `stream_uops` — length of the virtual stream (micro-trace μops),
    /// * `total_window_loads` — loads the full window stands for (used to
    ///   scale miss counts),
    /// * `store_llc_misses` — LLC store misses (bandwidth scaling).
    #[allow(clippy::too_many_arguments)] // mirrors the thesis' Eq 4.x parameter list
    pub fn evaluate(
        &self,
        static_loads: &[StaticLoadProfile],
        loads_model: &CacheModel,
        f: &LoadDependenceDistribution,
        stream_uops: u64,
        total_window_loads: f64,
        store_llc_misses: f64,
        window_cold_misses: f64,
    ) -> MemoryBehavior {
        self.evaluate_stream(
            &VirtualStream::build(static_loads, f, stream_uops),
            static_loads,
            loads_model,
            stream_uops,
            total_window_loads,
            store_llc_misses,
            window_cold_misses,
        )
    }

    /// Evaluate a micro-trace whose stream skeleton was prebuilt
    /// ([`VirtualStream::build`]). This is the per-design-point fast path:
    /// the positions/draws/depths are reused and only the machine-dependent
    /// classification (miss vs hit against this machine's critical reuse
    /// distance, prefetch timeliness, ROB-window stepping) is redone.
    #[allow(clippy::too_many_arguments)] // mirrors the thesis' Eq 4.x parameter list
    pub fn evaluate_stream(
        &self,
        skeleton: &VirtualStream,
        static_loads: &[StaticLoadProfile],
        loads_model: &CacheModel,
        stream_uops: u64,
        total_window_loads: f64,
        store_llc_misses: f64,
        window_cold_misses: f64,
    ) -> MemoryBehavior {
        assert_eq!(
            skeleton.owners,
            static_loads.len(),
            "virtual-stream skeleton was built from a different static-load set"
        );
        let rob = self.machine.core.rob_size as u64;
        let crit_l3 = loads_model.critical_rd[2];
        let use_prefetcher = self.machine.prefetcher.enabled;

        // --- Classify the prebuilt stream for this machine -----------------
        // Per-static-load miss probabilities, split into cold and reuse
        // parts (computed once per owner, as the inline build does).
        let probs: Vec<(f64, f64)> = static_loads
            .iter()
            .map(|load| {
                let p_miss = load.miss_probability(crit_l3);
                (p_miss, load.cold_fraction.min(p_miss))
            })
            .collect();
        let mut stream: Vec<VirtualLoad> = skeleton
            .entries
            .iter()
            .map(|s| {
                let (p_miss, p_cold) = probs[s.owner as usize];
                let misses = s.miss_draw < p_miss;
                VirtualLoad {
                    position: s.position,
                    owner: s.owner,
                    misses_llc: misses,
                    cold: misses && s.miss_draw < p_cold,
                    depth: s.depth,
                    stall_factor: 1.0,
                }
            })
            .collect();

        // --- Prefetcher coverage & timeliness (§4.9, Eq 4.13) --------------
        if use_prefetcher && !stream.is_empty() {
            self.apply_prefetcher(&mut stream, static_loads);
        }

        // --- Step ROB windows, count independent LLC misses ----------------
        // Windows begin at a (predicted) main-memory access and step (the
        // thesis' explicit choice over sliding, §4.5).
        let m_llc_ratio = if stream.is_empty() {
            0.0
        } else {
            stream.iter().filter(|v| v.misses_llc).count() as f64 / stream.len() as f64
        };
        let survive = |l: u8| (1.0 - m_llc_ratio).powi(l as i32 - 1);
        let mut window_mlps: Vec<f64> = Vec::new();
        let mut i = 0usize;
        while i < stream.len() {
            while i < stream.len() && !stream[i].misses_llc {
                i += 1;
            }
            if i >= stream.len() {
                break;
            }
            let window_start = stream[i].position;
            let window_end = window_start + rob;
            let mut independent = 0.0;
            let mut misses = 0u32;
            let mut j = i;
            while j < stream.len() && stream[j].position < window_end {
                if stream[j].misses_llc {
                    misses += 1;
                    independent += survive(stream[j].depth);
                }
                j += 1;
            }
            if misses > 0 {
                window_mlps.push(independent.max(1.0));
            }
            i = j.max(i + 1);
        }

        let raw_mlp = if window_mlps.is_empty() {
            1.0
        } else {
            window_mlps.iter().sum::<f64>() / window_mlps.len() as f64
        };
        let mlp = mshr_soft_cap(raw_mlp, self.machine.mem.mshr_entries).max(1.0);
        let total_windows = (stream_uops / rob).max(1) as f64;
        let miss_window_density = (window_mlps.len() as f64 / total_windows).min(1.0);

        // --- Scale the virtual stream's misses to the full window ----------
        // Reuse misses are a stationary *rate* and extrapolate with the
        // window weight; cold misses happen once, and the profiler counted
        // the window's exact total, so they are taken verbatim.
        let stream_loads = stream.len() as f64;
        let mut reuse_misses = 0.0;
        let mut reuse_stalled = 0.0;
        let mut cold_misses_stream = 0.0;
        let mut cold_stalled = 0.0;
        for v in stream.iter().filter(|v| v.misses_llc) {
            if v.cold {
                cold_misses_stream += 1.0;
                cold_stalled += v.stall_factor;
            } else {
                reuse_misses += 1.0;
                reuse_stalled += v.stall_factor;
            }
        }
        let (reuse_frac, reuse_stall_frac) = if stream_loads > 0.0 {
            (reuse_misses / stream_loads, reuse_stalled / stream_loads)
        } else {
            (0.0, 0.0)
        };
        let cold_stall_ratio = if cold_misses_stream > 0.0 {
            cold_stalled / cold_misses_stream
        } else {
            1.0
        };
        let llc_load_misses = reuse_frac * total_window_loads + window_cold_misses;
        let stalling =
            reuse_stall_frac * total_window_loads + cold_stall_ratio * window_cold_misses;

        MemoryBehavior {
            mlp,
            llc_load_misses,
            stalling_load_misses: stalling,
            llc_store_misses: store_llc_misses,
            prefetch_coverage: if llc_load_misses > 0.0 {
                1.0 - stalling / llc_load_misses
            } else {
                0.0
            },
            miss_window_density,
        }
    }

    /// Walk the virtual stream with a finite prefetch table (Fig 4.10) and
    /// apply the timeliness rule of Eq 4.13.
    fn apply_prefetcher(&self, stream: &mut [VirtualLoad], static_loads: &[StaticLoadProfile]) {
        let table = self.machine.prefetcher.table_entries as usize;
        let page = self.machine.mem.dram_page_bytes as i64;
        let dram = self.machine.mem.dram_latency as f64;
        let rob = self.machine.core.rob_size as f64;
        // LRU list of tracked static loads with their seen-count.
        let mut lru: Vec<(u32, u32)> = Vec::new(); // (owner, recurrences tracked)
        for v in stream.iter_mut() {
            let owner = v.owner;
            let load = &static_loads[owner as usize];
            let trained = match lru.iter().position(|&(o, _)| o == owner) {
                Some(pos) => {
                    let (o, seen) = lru.remove(pos);
                    lru.insert(0, (o, seen + 1));
                    seen + 1 >= 2 // needs two tracked recurrences to train
                }
                None => {
                    lru.insert(0, (owner, 0));
                    lru.truncate(table.max(1));
                    false
                }
            };
            if !trained || !v.misses_llc {
                continue;
            }
            // Only strided loads with in-page strides are prefetchable.
            let prefetchable = load.category.is_strided()
                && load
                    .strides
                    .first()
                    .map(|&(s, _)| s != 0 && s.abs() < page)
                    .unwrap_or(false);
            if !prefetchable {
                continue;
            }
            // Timeliness (Eq 4.13): the prefetch fires one recurrence
            // ahead; spacing ≥ ROB hides everything, otherwise partially.
            let spacing = load.mean_spacing.max(1.0);
            if spacing >= rob {
                v.stall_factor = 0.0;
            } else {
                let hidden = spacing / self.deff.max(0.1);
                v.stall_factor = ((dram - hidden) / dram).clamp(0.0, 1.0);
            }
        }
    }
}

/// Classification helper: is this load "unique" in the Fig 4.7 sense?
pub fn is_unique(load: &StaticLoadProfile) -> bool {
    load.category == StrideCategory::Unique
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmt_profiler::LoadDependenceDistribution;

    fn f_indep() -> LoadDependenceDistribution {
        LoadDependenceDistribution::from_fractions(vec![1.0], 8.0)
    }

    fn f_chained() -> LoadDependenceDistribution {
        // All loads at depth 4: heavily serialized.
        LoadDependenceDistribution::from_fractions(vec![0.0, 0.0, 0.0, 1.0], 8.0)
    }

    #[test]
    fn cold_mlp_grows_with_burstiness() {
        let quiet = cold_miss_mlp(&f_indep(), 0.1, 0.9, 1.0, 10.0, 32);
        let bursty = cold_miss_mlp(&f_indep(), 0.1, 0.9, 8.0, 10.0, 32);
        assert!(bursty > quiet, "{bursty} vs {quiet}");
    }

    #[test]
    fn cold_mlp_is_reduced_by_dependences() {
        let indep = cold_miss_mlp(&f_indep(), 0.5, 0.5, 6.0, 10.0, 32);
        let chained = cold_miss_mlp(&f_chained(), 0.5, 0.5, 6.0, 10.0, 32);
        assert!(chained < indep, "{chained} vs {indep}");
    }

    #[test]
    fn cold_mlp_floors_at_one() {
        assert_eq!(cold_miss_mlp(&f_indep(), 0.0, 0.0, 0.0, 0.0, 8), 1.0);
    }

    #[test]
    fn mshr_cap_is_soft() {
        assert_eq!(mshr_soft_cap(5.0, 10), 5.0);
        let capped = mshr_soft_cap(20.0, 10);
        assert!(capped > 10.0 && capped < 20.0, "{capped}");
        assert!((capped - 15.0).abs() < 1e-9);
    }

    #[test]
    fn unit_hash_is_deterministic_and_uniformish() {
        let a = unit_hash(42, 7);
        assert_eq!(a, unit_hash(42, 7));
        let mean: f64 = (0..1000).map(|i| unit_hash(99, i)).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "{mean}");
    }

    #[test]
    fn depth_sampling_respects_distribution() {
        let f = LoadDependenceDistribution::from_fractions(vec![0.5, 0.5], 4.0);
        let mut ones = 0;
        for i in 0..1000 {
            if sample_depth(&f, unit_hash(1, i)) == 1 {
                ones += 1;
            }
        }
        assert!(ones > 400 && ones < 600, "{ones}");
    }
}

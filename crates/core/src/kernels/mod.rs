//! Batched structure-of-arrays prediction kernels.
//!
//! The scalar hot path ([`IntervalModel::predict_summary`]) evaluates one
//! design point at a time: per point it chases one `Arc` per fitted
//! StatStack curve, runs six binary searches per curve, and re-walks the
//! stride-MLP virtual stream. This module restructures that work around
//! *batches* of design points:
//!
//! * `arena` *(internal)* — every fitted curve of a
//!   [`PreparedProfile`](crate::PreparedProfile) laid out once as flat
//!   sorted SoA arrays (`floors`/`survival`/`stack`), queried in place;
//! * [`search`] — the branchless sorted-slice search those queries use,
//!   probe-for-probe identical to `std`'s binary search;
//! * [`lanes`] — chunked elementwise f64 arithmetic (`core::arch` SIMD
//!   behind a scalar-identical runtime-selected fallback;
//!   `PMT_FORCE_SCALAR=1` forces the fallback) for the outer
//!   per-point arrays (CPI, seconds);
//! * [`BatchPredictor`] — the entry point: one per (prepared profile,
//!   config), memoizing curve queries and stride walks across the
//!   points of a batch.
//!
//! Everything here is bit-identical to the scalar path by construction
//! (same arithmetic, same probe sequences, per-lane correctly-rounded
//! SIMD); `crates/core/tests/batch_identity.rs` pins it.
//!
//! [`IntervalModel::predict_summary`]: crate::IntervalModel::predict_summary

pub(crate) mod arena;
pub mod batch;
pub mod lanes;
pub mod search;

pub use batch::{BatchPredictor, MemoStats};

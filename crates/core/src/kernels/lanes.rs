//! Chunked f64 lane arithmetic: `core::arch` SIMD behind a
//! scalar-identical fallback, selected once at runtime.
//!
//! # Why the fallback is bit-identical
//!
//! Every operation here is an *elementwise* IEEE-754 add/mul/div — no
//! horizontal reductions, no reassociation, and deliberately **no FMA**.
//! Per-lane packed arithmetic (`_mm256_div_pd` and friends) is
//! correctly rounded exactly like the corresponding scalar instruction,
//! so the SIMD and scalar paths produce the same bits for the same
//! inputs, and golden tests keep pinning bit-equality regardless of
//! which path the host selects. Anything that would break that contract
//! (reductions, FMA contraction, reciprocal approximations) stays out
//! of this module by design.
//!
//! # Dispatch
//!
//! [`simd_level`] probes the CPU once (cached): AVX2 where available,
//! the x86-64 baseline SSE2 otherwise, plain scalar on other
//! architectures. Setting `PMT_FORCE_SCALAR=1` in the environment forces
//! the scalar path — CI runs the conformance suite both ways so both
//! code paths are exercised on every push.

use std::sync::OnceLock;

/// f64 lanes in the widest vector path (AVX2 = 256 bits). Batch tests
/// probe sizes straddling this boundary (lane−1, lane, lane+1).
pub const LANES: usize = 4;

/// The vector width the runtime dispatch selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Plain scalar loops (also the `PMT_FORCE_SCALAR=1` path).
    Scalar,
    /// 128-bit SSE2 lanes (the x86-64 baseline).
    Sse2,
    /// 256-bit AVX2 lanes.
    Avx2,
}

impl SimdLevel {
    /// Short label for perf records and logs.
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// The lane width this process uses, probed once: `PMT_FORCE_SCALAR=1`
/// forces [`SimdLevel::Scalar`]; otherwise the best supported x86-64
/// level (other architectures run scalar).
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(detect)
}

fn detect() -> SimdLevel {
    if std::env::var_os("PMT_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0") {
        return SimdLevel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            // SSE2 is part of the x86-64 baseline.
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    SimdLevel::Scalar
}

/// `out[i] = num[i] / den[i]`.
///
/// # Panics
///
/// Panics if the three slices differ in length.
pub fn div(num: &[f64], den: &[f64], out: &mut [f64]) {
    assert_eq!(num.len(), den.len(), "lanes::div length mismatch");
    assert_eq!(num.len(), out.len(), "lanes::div length mismatch");
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: simd_level() returned Avx2/Sse2 only after runtime
        // feature detection on this CPU.
        SimdLevel::Avx2 => unsafe { div_avx2(num, den, out) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { div_sse2(num, den, out) },
        _ => {
            for i in 0..num.len() {
                out[i] = num[i] / den[i];
            }
        }
    }
}

/// `out[i] = num[i] / den` (broadcast divisor — *not* a multiply by the
/// reciprocal, which would round differently).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn div_scalar(num: &[f64], den: f64, out: &mut [f64]) {
    assert_eq!(num.len(), out.len(), "lanes::div_scalar length mismatch");
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level proven by runtime detection (see div()).
        SimdLevel::Avx2 => unsafe { div_scalar_avx2(num, den, out) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { div_scalar_sse2(num, den, out) },
        _ => {
            for i in 0..num.len() {
                out[i] = num[i] / den;
            }
        }
    }
}

/// `out[i] = a[i] * b[i]`.
///
/// # Panics
///
/// Panics if the three slices differ in length.
pub fn mul(a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), b.len(), "lanes::mul length mismatch");
    assert_eq!(a.len(), out.len(), "lanes::mul length mismatch");
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level proven by runtime detection (see div()).
        SimdLevel::Avx2 => unsafe { mul_avx2(a, b, out) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { mul_sse2(a, b, out) },
        _ => {
            for i in 0..a.len() {
                out[i] = a[i] * b[i];
            }
        }
    }
}

/// `out[i] = a[i] * s`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_scalar(a: &[f64], s: f64, out: &mut [f64]) {
    assert_eq!(a.len(), out.len(), "lanes::mul_scalar length mismatch");
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level proven by runtime detection (see div()).
        SimdLevel::Avx2 => unsafe { mul_scalar_avx2(a, s, out) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { mul_scalar_sse2(a, s, out) },
        _ => {
            for i in 0..a.len() {
                out[i] = a[i] * s;
            }
        }
    }
}

// Each x86-64 body widens the same scalar loop: packed correctly-rounded
// lanes over the aligned prefix, the scalar tail for the remainder —
// identical bits either way.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    macro_rules! lanes_binop {
        ($avx2:ident, $sse2:ident, $op256:ident, $op128:ident, $op:tt) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $avx2(a: &[f64], b: &[f64], out: &mut [f64]) {
                let n = a.len();
                let mut i = 0;
                while i + 4 <= n {
                    // SAFETY: i + 4 <= n bounds every 4-wide load/store.
                    unsafe {
                        let va = _mm256_loadu_pd(a.as_ptr().add(i));
                        let vb = _mm256_loadu_pd(b.as_ptr().add(i));
                        _mm256_storeu_pd(out.as_mut_ptr().add(i), $op256(va, vb));
                    }
                    i += 4;
                }
                while i < n {
                    out[i] = a[i] $op b[i];
                    i += 1;
                }
            }

            #[target_feature(enable = "sse2")]
            pub unsafe fn $sse2(a: &[f64], b: &[f64], out: &mut [f64]) {
                let n = a.len();
                let mut i = 0;
                while i + 2 <= n {
                    // SAFETY: i + 2 <= n bounds every 2-wide load/store.
                    unsafe {
                        let va = _mm_loadu_pd(a.as_ptr().add(i));
                        let vb = _mm_loadu_pd(b.as_ptr().add(i));
                        _mm_storeu_pd(out.as_mut_ptr().add(i), $op128(va, vb));
                    }
                    i += 2;
                }
                while i < n {
                    out[i] = a[i] $op b[i];
                    i += 1;
                }
            }
        };
    }

    macro_rules! lanes_scalar_op {
        ($avx2:ident, $sse2:ident, $op256:ident, $op128:ident, $op:tt) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $avx2(a: &[f64], s: f64, out: &mut [f64]) {
                let n = a.len();
                let vs = _mm256_set1_pd(s);
                let mut i = 0;
                while i + 4 <= n {
                    // SAFETY: i + 4 <= n bounds every 4-wide load/store.
                    unsafe {
                        let va = _mm256_loadu_pd(a.as_ptr().add(i));
                        _mm256_storeu_pd(out.as_mut_ptr().add(i), $op256(va, vs));
                    }
                    i += 4;
                }
                while i < n {
                    out[i] = a[i] $op s;
                    i += 1;
                }
            }

            #[target_feature(enable = "sse2")]
            pub unsafe fn $sse2(a: &[f64], s: f64, out: &mut [f64]) {
                let n = a.len();
                let vs = _mm_set1_pd(s);
                let mut i = 0;
                while i + 2 <= n {
                    // SAFETY: i + 2 <= n bounds every 2-wide load/store.
                    unsafe {
                        let va = _mm_loadu_pd(a.as_ptr().add(i));
                        _mm_storeu_pd(out.as_mut_ptr().add(i), $op128(va, vs));
                    }
                    i += 2;
                }
                while i < n {
                    out[i] = a[i] $op s;
                    i += 1;
                }
            }
        };
    }

    lanes_binop!(div_avx2, div_sse2, _mm256_div_pd, _mm_div_pd, /);
    lanes_binop!(mul_avx2, mul_sse2, _mm256_mul_pd, _mm_mul_pd, *);
    lanes_scalar_op!(div_scalar_avx2, div_scalar_sse2, _mm256_div_pd, _mm_div_pd, /);
    lanes_scalar_op!(mul_scalar_avx2, mul_scalar_sse2, _mm256_mul_pd, _mm_mul_pd, *);
}

#[cfg(target_arch = "x86_64")]
use x86::{
    div_avx2, div_scalar_avx2, div_scalar_sse2, div_sse2, mul_avx2, mul_scalar_avx2,
    mul_scalar_sse2, mul_sse2,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: usize) -> (Vec<f64>, Vec<f64>) {
        let a: Vec<f64> = (0..n).map(|i| (i as f64 + 0.25) * 1.7e3).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 + 1.5) * 3.1e-2).collect();
        (a, b)
    }

    /// Every op must equal the plain scalar loop bit-for-bit at sizes
    /// straddling both vector widths (0..=9 covers lane−1/lane/lane+1
    /// for SSE2 and AVX2 alike).
    #[test]
    fn ops_match_scalar_bitwise_at_all_remainders() {
        for n in 0..=9usize {
            let (a, b) = inputs(n);
            let mut out = vec![0.0; n];

            div(&a, &b, &mut out);
            for i in 0..n {
                assert_eq!(out[i].to_bits(), (a[i] / b[i]).to_bits(), "div n={n} i={i}");
            }

            mul(&a, &b, &mut out);
            for i in 0..n {
                assert_eq!(out[i].to_bits(), (a[i] * b[i]).to_bits(), "mul n={n} i={i}");
            }

            div_scalar(&a, 3.7, &mut out);
            for i in 0..n {
                assert_eq!(
                    out[i].to_bits(),
                    (a[i] / 3.7).to_bits(),
                    "div_s n={n} i={i}"
                );
            }

            mul_scalar(&a, 1e9, &mut out);
            for i in 0..n {
                assert_eq!(
                    out[i].to_bits(),
                    (a[i] * 1e9).to_bits(),
                    "mul_s n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn level_is_stable_and_labeled() {
        let level = simd_level();
        assert_eq!(level, simd_level());
        assert!(!level.label().is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut out = vec![0.0; 2];
        div(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], &mut out);
    }
}

//! Flat structure-of-arrays storage for a [`PreparedProfile`]'s fitted
//! StatStack curves.
//!
//! A prepared profile owns one fitted curve per query site — the
//! instruction path, the global load/store models, and a loads/stores
//! pair per micro-trace window — each behind its own `Arc`. The scalar
//! path chases those `Arc`s per design point. [`CurveArena`] instead
//! copies every curve's `(floors, survival, stack)` knots once into
//! three shared flat arrays, indexed by [`CurveId::arena_index`]
//! evaluation order, so a whole batch of design points answers its
//! miss-ratio / critical-reuse-distance queries from contiguous sorted
//! storage with the branchless [`search_f64`]/[`search_u64`].
//!
//! The query routines are line-for-line transcriptions of
//! `StackDistanceModel::critical_reuse_distance` / `miss_ratio`
//! (including the `Err(0)`/saturated edge cases and the
//! interpolate-within-segment step), with one deliberate saving: a
//! [`CachePoint`] computes each level's critical distance once and feeds
//! it straight into the miss-ratio lookup, where the scalar
//! `CacheModel::from_fitted` recomputes it inside `miss_ratio`. Same
//! deterministic function of the same inputs, half the searches —
//! bit-identical results, pinned by the differential tests below and the
//! conformance suite.
//!
//! [`CurveId::arena_index`]: crate::model::CurveId::arena_index

use crate::cache_model::MissRatios;
use crate::kernels::search::{search_f64, search_u64};
use crate::prepared::PreparedProfile;
use pmt_statstack::StackDistanceModel;

/// One curve's slice of the arena plus its query-relevant scalars.
struct CurveSpan {
    start: usize,
    len: usize,
    cold_fraction: f64,
    total: u64,
}

/// All fitted curves of one prepared profile, laid out as parallel flat
/// arrays in [`CurveId`](crate::model::CurveId) evaluation order.
pub(crate) struct CurveArena {
    spans: Vec<CurveSpan>,
    floors: Vec<u64>,
    survival: Vec<f64>,
    stack: Vec<f64>,
}

/// The machine-dependent answers for one curve at one line-count triple —
/// exactly the fields `CacheModel::from_fitted` derives.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CachePoint {
    /// Critical reuse distance per level.
    pub(crate) critical_rd: [u64; 3],
    /// Miss ratio per level.
    pub(crate) ratios: MissRatios,
    /// Cold-access fraction of the curve.
    pub(crate) cold_fraction: f64,
}

impl CurveArena {
    /// Lay out every fitted curve of `prepared` in evaluation order:
    /// instruction, global loads, global stores, then each window's
    /// loads/stores pair.
    pub(crate) fn new(prepared: &PreparedProfile<'_>) -> CurveArena {
        let mut arena = CurveArena {
            spans: Vec::new(),
            floors: Vec::new(),
            survival: Vec::new(),
            stack: Vec::new(),
        };
        arena.push(prepared.inst_model());
        let (global_loads, global_stores) = prepared.global_models();
        arena.push(global_loads);
        arena.push(global_stores);
        for pw in prepared.windows() {
            arena.push(&pw.loads);
            arena.push(&pw.stores);
        }
        arena
    }

    fn push(&mut self, model: &StackDistanceModel) {
        let (floors, survival, stack) = model.curve();
        self.spans.push(CurveSpan {
            start: self.floors.len(),
            len: floors.len(),
            cold_fraction: model.cold_fraction(),
            total: model.total_accesses(),
        });
        self.floors.extend_from_slice(floors);
        self.survival.extend_from_slice(survival);
        self.stack.extend_from_slice(stack);
    }

    /// Answer every query `CacheModel::from_fitted` would make for curve
    /// `curve` at per-level line counts `lines`, bit-identically.
    pub(crate) fn evaluate(&self, curve: u32, lines: [u64; 3]) -> CachePoint {
        let span = &self.spans[curve as usize];
        let critical_rd = [
            self.critical_rd(span, lines[0]),
            self.critical_rd(span, lines[1]),
            self.critical_rd(span, lines[2]),
        ];
        let ratios = MissRatios {
            l1: self.miss_ratio(span, lines[0], critical_rd[0]),
            l2: self.miss_ratio(span, lines[1], critical_rd[1]),
            l3: self.miss_ratio(span, lines[2], critical_rd[2]),
        };
        CachePoint {
            critical_rd,
            ratios,
            cold_fraction: span.cold_fraction,
        }
    }

    /// `StackDistanceModel::critical_reuse_distance`, transcribed onto
    /// the flat storage.
    fn critical_rd(&self, span: &CurveSpan, cache_lines: u64) -> u64 {
        if span.total == 0 {
            return u64::MAX;
        }
        let stack = &self.stack[span.start..span.start + span.len];
        let target = cache_lines as f64;
        match search_f64(stack, target) {
            Ok(i) => self.floors[span.start + i],
            Err(0) => cache_lines,
            Err(i) if i == stack.len() => u64::MAX,
            Err(i) => {
                let base_sd = stack[i - 1];
                let slope = self.survival[span.start + i - 1];
                if slope <= f64::EPSILON {
                    self.floors[span.start + i]
                } else {
                    self.floors[span.start + i - 1] + ((target - base_sd) / slope).ceil() as u64
                }
            }
        }
    }

    /// `StackDistanceModel::miss_ratio`, transcribed onto the flat
    /// storage — except `crit` arrives precomputed (see the module docs)
    /// instead of being re-derived from `cache_lines`.
    fn miss_ratio(&self, span: &CurveSpan, cache_lines: u64, crit: u64) -> f64 {
        if span.total == 0 {
            return 0.0;
        }
        if cache_lines == 0 {
            return 1.0;
        }
        if crit == u64::MAX {
            return span.cold_fraction;
        }
        let floors = &self.floors[span.start..span.start + span.len];
        match search_u64(floors, crit) {
            Ok(i) => self.survival[span.start + i],
            Err(0) => 1.0,
            Err(i) => self.survival[span.start + i - 1],
        }
        .max(span.cold_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_model::CacheModel;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn arena_of(models: &[&StackDistanceModel]) -> CurveArena {
        let mut arena = CurveArena {
            spans: Vec::new(),
            floors: Vec::new(),
            survival: Vec::new(),
            stack: Vec::new(),
        };
        for m in models {
            arena.push(m);
        }
        arena
    }

    /// Deserialize an adversarial hand-crafted curve (the fields are
    /// private; serde is the supported way to materialize arbitrary
    /// shapes, e.g. from snapshots of other processes' fits).
    fn model_from_parts(
        floors: &[u64],
        survival: &[f64],
        stack: &[f64],
        cold_fraction: f64,
        total: u64,
    ) -> StackDistanceModel {
        let ints = |xs: &[u64]| {
            xs.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let reals = |xs: &[f64]| {
            xs.iter()
                .map(|x| format!("{x:?}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        serde_json::from_str(&format!(
            "{{\"floors\":[{}],\"survival\":[{}],\"stack\":[{}],\"cold_fraction\":{:?},\"total\":{}}}",
            ints(floors),
            reals(survival),
            reals(stack),
            cold_fraction,
            total,
        ))
        .expect("valid StackDistanceModel shape")
    }

    fn assert_agrees(model: &StackDistanceModel, lines: [u64; 3]) {
        let arena = arena_of(&[model]);
        let fast = arena.evaluate(0, lines);
        let reference = CacheModel::from_fitted(&Arc::new(model.clone()), lines);
        assert_eq!(fast.critical_rd, reference.critical_rd, "crit at {lines:?}");
        for (a, b) in [
            (fast.ratios.l1, reference.ratios.l1),
            (fast.ratios.l2, reference.ratios.l2),
            (fast.ratios.l3, reference.ratios.l3),
        ] {
            assert_eq!(a.to_bits(), b.to_bits(), "ratio {a} vs {b} at {lines:?}");
        }
        assert_eq!(
            fast.cold_fraction.to_bits(),
            reference.cold_fraction().to_bits()
        );
    }

    /// An adversarial fitted-curve shape: monotone floors (as `from_reuse`
    /// produces), survival in [0, 1] *including zero runs* (which create
    /// duplicate stack knots), non-decreasing stack values, extreme
    /// totals/cold fractions.
    fn curve_strategy() -> impl Strategy<Value = StackDistanceModel> {
        (
            (1usize..10, 0u32..4),
            prop::collection::vec(0.0f64..=1.0, 10),
            prop::collection::vec(0u64..100, 10),
            prop::collection::vec(0.0f64..50.0, 10),
            0.0f64..=1.0,
        )
            .prop_map(
                |((len, total_sel), survs, floor_steps, stack_steps, cold)| {
                    let total = match total_sel {
                        0 => 0, // the empty-fit fast path
                        1 => 1,
                        2 => 12_345,
                        _ => u64::MAX,
                    };
                    // Cumulative floors (strictly increasing) and cumulative
                    // stack (non-decreasing; a zero step duplicates a knot).
                    let mut floors = Vec::with_capacity(len);
                    let mut stack = Vec::with_capacity(len);
                    let mut floor = 0u64;
                    let mut sd = 0.0f64;
                    for i in 0..len {
                        floor += floor_steps[i] + 1;
                        floors.push(floor);
                        sd += if survs[i] < 0.25 { 0.0 } else { stack_steps[i] };
                        stack.push(sd);
                    }
                    model_from_parts(&floors, &survs[..len], &stack, cold, total)
                },
            )
    }

    proptest! {
        /// The SoA transcription must agree bit-for-bit with the scalar
        /// queries on arbitrary adversarial curves — duplicate knots,
        /// zero-survival segments, empty (`total == 0`) fits, extreme
        /// line counts.
        #[test]
        fn arena_matches_scalar_queries_on_adversarial_curves(
            model in curve_strategy(),
            l1_sel in 0u32..3,
            l1_val in 1u64..5000,
            l2 in 1u64..100_000,
            l3_sel in 0u32..3,
            l3_val in 1u64..1_000_000,
        ) {
            let l1 = match l1_sel {
                0 => 0, // a zero-line level hits miss_ratio's early return
                1 => l1_val,
                _ => u64::MAX / 2,
            };
            let l3 = if l3_sel == 0 { u64::MAX } else { l3_val };
            assert_agrees(&model, [l1, l2, l3]);
        }
    }

    #[test]
    fn single_point_fit_agrees_everywhere() {
        // The degenerate fit `from_reuse` produces for an empty histogram
        // and a hand-crafted single-knot curve.
        let empty = model_from_parts(&[0], &[0.0], &[0.0], 0.0, 0);
        let single = model_from_parts(&[4], &[0.5], &[2.0], 0.25, 100);
        for lines in [[0u64, 0, 0], [1, 2, 3], [512, 4096, 131_072]] {
            assert_agrees(&empty, lines);
            assert_agrees(&single, lines);
        }
    }

    #[test]
    fn arena_spans_keep_curves_separate() {
        let a = model_from_parts(&[1, 2], &[0.9, 0.1], &[1.0, 1.9], 0.1, 10);
        let b = model_from_parts(&[5, 9, 12], &[0.8, 0.4, 0.0], &[3.0, 6.2, 7.4], 0.3, 99);
        let arena = arena_of(&[&a, &b]);
        let lines = [2, 4, 8];
        let fast_a = arena.evaluate(0, lines);
        let fast_b = arena.evaluate(1, lines);
        let ref_a = CacheModel::from_fitted(&Arc::new(a), lines);
        let ref_b = CacheModel::from_fitted(&Arc::new(b), lines);
        assert_eq!(fast_a.critical_rd, ref_a.critical_rd);
        assert_eq!(fast_b.critical_rd, ref_b.critical_rd);
        assert_eq!(fast_a.ratios.l3.to_bits(), ref_a.ratios.l3.to_bits());
        assert_eq!(fast_b.ratios.l3.to_bits(), ref_b.ratios.l3.to_bits());
    }
}

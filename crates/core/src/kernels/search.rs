//! Branchless sorted-slice search, probe-for-probe identical to
//! `std`'s `slice::binary_search_by`.
//!
//! The batched kernels answer miss-ratio / critical-reuse-distance
//! queries against the same fitted curves the scalar path searches with
//! `binary_search` / `binary_search_by`. Those curves may contain
//! *duplicate* knots (a zero-survival segment repeats the same expected
//! stack distance), and the scalar code's behaviour on duplicates is
//! semantically load-bearing: `Ok(i)` indexes into a parallel `floors`
//! array, so returning a *different* matching index would change the
//! result. Bit-identity therefore requires replicating `std`'s exact
//! probe sequence — including which of several equal elements it lands
//! on — not merely "a correct binary search".
//!
//! `std`'s current algorithm is already the branchless shape we want:
//! the loop runs a *fixed* `⌈log₂ len⌉` iterations with no early exit
//! (so the iteration count never depends on the data), and the window
//! update is a conditional move (`base` either stays or jumps to `mid`).
//! The functions below transcribe it literally. An interpolated *first
//! probe* (guessing the index from the value range) was rejected: it
//! visits a different probe path and can land on a different `Ok` index
//! when knots repeat. The interpolation the module docs promise lives
//! *after* the search — the caller solves
//! `floors[i-1] + (target - stack[i-1]) / survival[i-1]` within the
//! located segment, which is the interpolation step of the
//! critical-reuse-distance query itself.
//!
//! The differential suite (`tests/search_differential.rs` plus the unit
//! tests below) pins index-exact agreement with `std` on adversarial
//! shapes, so a future `std` algorithm change fails loudly instead of
//! silently shifting golden files.

/// Search a sorted `f64` slice for `target`, returning exactly what
/// `xs.binary_search_by(|x| x.partial_cmp(&target).unwrap())` returns —
/// the same `Ok` index on duplicates, the same `Err` insertion point.
///
/// Precondition: neither `xs` nor `target` contains NaN (the scalar
/// path's `partial_cmp(..).unwrap()` would panic on NaN; this routine
/// would return an arbitrary `Err`). The fitted curves never contain
/// NaN.
#[inline]
pub fn search_f64(xs: &[f64], target: f64) -> Result<usize, usize> {
    let mut size = xs.len();
    if size == 0 {
        return Err(0);
    }
    let mut base = 0usize;
    while size > 1 {
        let half = size / 2;
        let mid = base + half;
        // Greater keeps `base`; Less *or Equal* jumps to `mid` — this
        // cmov is what decides which duplicate the search lands on.
        base = if xs[mid] > target { base } else { mid };
        size -= half;
    }
    let v = xs[base];
    if v == target {
        Ok(base)
    } else {
        Err(base + (v < target) as usize)
    }
}

/// Search a sorted `u64` slice for `target`, returning exactly what
/// `xs.binary_search(&target)` returns.
#[inline]
pub fn search_u64(xs: &[u64], target: u64) -> Result<usize, usize> {
    let mut size = xs.len();
    if size == 0 {
        return Err(0);
    }
    let mut base = 0usize;
    while size > 1 {
        let half = size / 2;
        let mid = base + half;
        base = if xs[mid] > target { base } else { mid };
        size -= half;
    }
    let v = xs[base];
    if v == target {
        Ok(base)
    } else {
        Err(base + (v < target) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_matches_std_f64(xs: &[f64], target: f64) {
        let std_result = xs.binary_search_by(|x| x.partial_cmp(&target).unwrap());
        assert_eq!(
            search_f64(xs, target),
            std_result,
            "f64 divergence on {xs:?} target {target}"
        );
    }

    fn assert_matches_std_u64(xs: &[u64], target: u64) {
        assert_eq!(
            search_u64(xs, target),
            xs.binary_search(&target),
            "u64 divergence on {xs:?} target {target}"
        );
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(search_f64(&[], 1.0), Err(0));
        assert_eq!(search_u64(&[], 1), Err(0));
        for t in [-1.0, 0.0, 1.0] {
            assert_matches_std_f64(&[0.0], t);
        }
        for t in [0u64, 1, 2] {
            assert_matches_std_u64(&[1], t);
        }
    }

    #[test]
    fn duplicates_pick_the_same_index_as_std() {
        // The load-bearing case: which of several equal elements is
        // returned must match std exactly, for every duplicate-run shape.
        for len in 1..=9usize {
            for start in 0..len {
                for run in 1..=(len - start) {
                    let xs: Vec<f64> = (0..len)
                        .map(|i| {
                            if i < start {
                                i as f64
                            } else if i < start + run {
                                start as f64
                            } else {
                                i as f64 + 100.0
                            }
                        })
                        .collect();
                    assert_matches_std_f64(&xs, start as f64);
                }
            }
        }
    }

    #[test]
    fn misses_agree_on_insertion_point() {
        let xs = [1.0, 3.0, 3.0, 3.0, 7.0, 9.0];
        for t in [0.0, 2.0, 3.5, 8.0, 10.0] {
            assert_matches_std_f64(&xs, t);
        }
        let ys = [2u64, 4, 4, 4, 8, u64::MAX];
        for t in [0u64, 3, 4, 5, 9, u64::MAX, u64::MAX - 1] {
            assert_matches_std_u64(&ys, t);
        }
    }

    #[test]
    fn extreme_values_round_trip() {
        let xs = [0.0, f64::MIN_POSITIVE, 1.0, f64::MAX];
        for t in [0.0, f64::MIN_POSITIVE, 0.5, 1.0, f64::MAX, f64::INFINITY] {
            assert_matches_std_f64(&xs, t);
        }
    }
}

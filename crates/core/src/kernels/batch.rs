//! The batched prediction path: one [`BatchPredictor`] per
//! (prepared profile, model config) evaluates a whole chunk of design
//! points, answering curve queries from the flat `CurveArena` and
//! memoizing the expensive machine-dependent computations across
//! points.
//!
//! # Why the results are bit-identical to the scalar path
//!
//! The predictor runs the *same* `Evaluator` arithmetic as
//! `IntervalModel::predict_summary` — only the `EvalHooks` differ, and
//! both hook implementations are deterministic functions of the same
//! inputs:
//!
//! * **Cache queries** are keyed by `(curve, per-level line counts)` —
//!   the complete input set of `CacheModel::from_fitted` — and answered
//!   by the arena's transcription of the scalar searches. A memo hit
//!   replays bytes the transcription produced earlier for identical
//!   inputs.
//! * **Stride walks** are keyed by every machine-dependent value
//!   `StrideMlpModel::evaluate_stream` reads for a fixed window: the
//!   window identity (fixing skeleton, static loads, stream length and
//!   cold counts), the L3 critical reuse distance of the window's load
//!   curve (the only field of `loads_model` the walk touches), ROB size,
//!   MSHR entries, and — only when the prefetcher is enabled, the only
//!   case that reads them — the prefetch-table size, DRAM page size,
//!   DRAM latency and the effective dispatch rate. `llc_store_misses`
//!   is a pure pass-through in the walk, so it stays out of the key and
//!   is overwritten with the current point's value after a hit. A miss
//!   computes through the very same `stride_stream_behavior` the scalar
//!   hooks call.
//! * **Critical paths and branch penalties** are keyed by their complete
//!   input sets — `(window, rob)` for CP(ROB), and the window plus every
//!   scalar the leaky-bucket walk (Alg 3.2) reads for the branch
//!   penalty. The walk iterates up to the misprediction interval with a
//!   dependency-curve interpolation per step, which makes it the single
//!   most expensive machine-dependent computation in a sweep — and its
//!   inputs are untouched by frequency, MSHR and last-level-cache axes,
//!   so most points replay it from the memo.
//!
//! Memo hits are what make batching ≥3× faster on sweep-shaped spaces:
//! neighbouring design points share most axes, so most points reuse
//! earlier points' curve queries, stride walks and branch penalties
//! outright.

use crate::branch_penalty::{branch_penalty, BranchPenalty};
use crate::cache_model::CacheModel;
use crate::config::ModelConfig;
use crate::kernels::arena::{CachePoint, CurveArena};
use crate::mlp::MemoryBehavior;
use crate::model::{
    stride_stream_behavior, CurveId, EvalHooks, Evaluator, PredictionSummary, WindowInputs,
};
use crate::prepared::PreparedProfile;
use pmt_statstack::StackDistanceModel;
use pmt_uarch::MachineConfig;
use std::collections::HashMap;
use std::sync::Arc;

/// Complete input set of a cache query: which curve, at which per-level
/// line counts.
type CacheKey = (u32, [u64; 3]);

/// Complete machine-dependent input set of one window's stride walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct StrideKey {
    window: u32,
    crit_l3: u64,
    rob: u32,
    mshr: u32,
    /// Present iff the prefetcher is enabled — the only case in which
    /// the walk reads any of these fields.
    prefetch: Option<PrefetchKey>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct PrefetchKey {
    table_entries: u32,
    dram_page_bytes: u32,
    dram_latency: u32,
    deff_bits: u64,
}

/// Complete input set of one window's branch-penalty computation
/// (leaky-bucket Alg 3.2): the window fixes the dependency profile; the
/// scalars are everything else `branch_penalty` reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct BranchKey {
    window: u32,
    rob: u32,
    width: u32,
    frontend_depth: u32,
    interval_bits: u64,
    lat_bits: u64,
}

/// Batched predictor for one prepared profile under one model
/// configuration: build once per chunk of design points, then call
/// [`predict_summary`](Self::predict_summary) per point (or
/// [`predict_batch_into`](Self::predict_batch_into) for a whole slice).
/// Later points reuse earlier points' memoized curve queries and stride
/// walks; results are bit-identical to
/// `IntervalModel::predict_summary`, in any evaluation order.
pub struct BatchPredictor<'p, 'a> {
    prepared: &'p PreparedProfile<'a>,
    config: ModelConfig,
    arena: CurveArena,
    cache_memo: HashMap<CacheKey, CachePoint>,
    stride_memo: HashMap<StrideKey, MemoryBehavior>,
    /// CP(ROB) per `(window, rob)`.
    cp_memo: HashMap<(u32, u32), f64>,
    /// Branch penalties per complete leaky-bucket input set.
    branch_memo: HashMap<BranchKey, BranchPenalty>,
}

impl<'p, 'a> BatchPredictor<'p, 'a> {
    /// Lay the profile's fitted curves out as flat SoA arrays and set up
    /// empty memo tables. One config clone total — per-point evaluation
    /// clones nothing.
    pub fn new(prepared: &'p PreparedProfile<'a>, config: &ModelConfig) -> BatchPredictor<'p, 'a> {
        BatchPredictor {
            prepared,
            config: config.clone(),
            arena: CurveArena::new(prepared),
            cache_memo: HashMap::new(),
            stride_memo: HashMap::new(),
            cp_memo: HashMap::new(),
            branch_memo: HashMap::new(),
        }
    }

    /// The prepared profile this predictor evaluates.
    pub fn prepared(&self) -> &'p PreparedProfile<'a> {
        self.prepared
    }

    /// Predict one design point, reusing everything memoized so far.
    /// Bit-identical to `IntervalModel::with_config(machine,
    /// config).predict_summary(prepared)`.
    pub fn predict_summary(&mut self, machine: &MachineConfig) -> PredictionSummary {
        let mut hooks = BatchHooks {
            arena: &self.arena,
            cache_memo: &mut self.cache_memo,
            stride_memo: &mut self.stride_memo,
            cp_memo: &mut self.cp_memo,
            branch_memo: &mut self.branch_memo,
        };
        Evaluator {
            machine,
            config: &self.config,
        }
        .run(self.prepared, false, &mut hooks)
        .0
    }

    /// Predict a whole chunk of design points in order, appending one
    /// summary per machine to `out` (cleared first).
    pub fn predict_batch_into<'m, I>(&mut self, machines: I, out: &mut Vec<PredictionSummary>)
    where
        I: IntoIterator<Item = &'m MachineConfig>,
    {
        out.clear();
        for machine in machines {
            out.push(self.predict_summary(machine));
        }
    }
}

/// The batched [`EvalHooks`]: arena-backed cache queries and memoized
/// stride walks. Borrows the predictor's parts separately so the
/// `Evaluator` can hold `&mut hooks` while the predictor's profile stays
/// borrowed.
struct BatchHooks<'s> {
    arena: &'s CurveArena,
    cache_memo: &'s mut HashMap<CacheKey, CachePoint>,
    stride_memo: &'s mut HashMap<StrideKey, MemoryBehavior>,
    cp_memo: &'s mut HashMap<(u32, u32), f64>,
    branch_memo: &'s mut HashMap<BranchKey, BranchPenalty>,
}

impl EvalHooks for BatchHooks<'_> {
    fn cache_model(
        &mut self,
        id: CurveId,
        model: &Arc<StackDistanceModel>,
        lines: [u64; 3],
    ) -> CacheModel {
        let curve = id.arena_index();
        let point = *self
            .cache_memo
            .entry((curve, lines))
            .or_insert_with(|| self.arena.evaluate(curve, lines));
        CacheModel::from_parts(model, point.critical_rd, point.ratios, point.cold_fraction)
    }

    fn stride(
        &mut self,
        machine: &MachineConfig,
        deff: f64,
        inp: &WindowInputs<'_>,
        loads: f64,
        store_llc_misses: f64,
    ) -> MemoryBehavior {
        let key = StrideKey {
            window: inp.window,
            crit_l3: inp.loads_model.critical_rd[2],
            rob: machine.core.rob_size,
            mshr: machine.mem.mshr_entries,
            prefetch: machine.prefetcher.enabled.then(|| PrefetchKey {
                table_entries: machine.prefetcher.table_entries,
                dram_page_bytes: machine.mem.dram_page_bytes,
                dram_latency: machine.mem.dram_latency,
                deff_bits: deff.to_bits(),
            }),
        };
        let mut behavior = *self
            .stride_memo
            .entry(key)
            .or_insert_with(|| stride_stream_behavior(machine, deff, inp, loads, store_llc_misses));
        // Pass-through field, not part of the walk: always the current
        // point's value.
        behavior.llc_store_misses = store_llc_misses;
        behavior
    }

    fn critical_path(&mut self, inp: &WindowInputs<'_>, rob: u32) -> f64 {
        *self
            .cp_memo
            .entry((inp.window, rob))
            .or_insert_with(|| inp.deps.cp(rob))
    }

    fn branch(
        &mut self,
        inp: &WindowInputs<'_>,
        rob: u32,
        width: u32,
        frontend_depth: u32,
        interval: f64,
        lat: f64,
    ) -> BranchPenalty {
        let key = BranchKey {
            window: inp.window,
            rob,
            width,
            frontend_depth,
            interval_bits: interval.to_bits(),
            lat_bits: lat.to_bits(),
        };
        *self
            .branch_memo
            .entry(key)
            .or_insert_with(|| branch_penalty(inp.deps, rob, width, frontend_depth, interval, lat))
    }
}

//! The batched prediction path: one [`BatchPredictor`] per
//! (prepared profile, model config) evaluates a whole chunk of design
//! points, answering curve queries from the flat `CurveArena` and
//! memoizing the expensive machine-dependent computations across
//! points.
//!
//! # Why the results are bit-identical to the scalar path
//!
//! The predictor runs the *same* `Evaluator` arithmetic as
//! `IntervalModel::predict_summary` — only the `EvalHooks` differ, and
//! both hook implementations are deterministic functions of the same
//! inputs:
//!
//! * **Cache queries** are keyed by `(curve, per-level line counts)` —
//!   the complete input set of `CacheModel::from_fitted` — and answered
//!   by the arena's transcription of the scalar searches. A memo hit
//!   replays bytes the transcription produced earlier for identical
//!   inputs.
//! * **Stride walks** are keyed by every machine-dependent value
//!   `StrideMlpModel::evaluate_stream` reads for a fixed window: the
//!   window identity (fixing skeleton, static loads, stream length and
//!   cold counts), the L3 critical reuse distance of the window's load
//!   curve (the only field of `loads_model` the walk touches), ROB size,
//!   MSHR entries, and — only when the prefetcher is enabled, the only
//!   case that reads them — the prefetch-table size, DRAM page size,
//!   DRAM latency and the effective dispatch rate. `llc_store_misses`
//!   is a pure pass-through in the walk, so it stays out of the key and
//!   is overwritten with the current point's value after a hit. A miss
//!   computes through the very same `stride_stream_behavior` the scalar
//!   hooks call.
//! * **Critical paths and branch penalties** are keyed by their complete
//!   input sets — `(window, rob)` for CP(ROB), and the window plus every
//!   scalar the leaky-bucket walk (Alg 3.2) reads for the branch
//!   penalty. The walk iterates up to the misprediction interval with a
//!   dependency-curve interpolation per step, which makes it the single
//!   most expensive machine-dependent computation in a sweep — and its
//!   inputs are untouched by frequency, MSHR and last-level-cache axes,
//!   so most points replay it from the memo.
//!
//! Memo hits are what make batching ≥3× faster on sweep-shaped spaces:
//! neighbouring design points share most axes, so most points reuse
//! earlier points' curve queries, stride walks and branch penalties
//! outright.

use crate::branch_penalty::{branch_penalty, BranchPenalty};
use crate::cache_model::CacheModel;
use crate::config::ModelConfig;
use crate::kernels::arena::{CachePoint, CurveArena};
use crate::mlp::MemoryBehavior;
use crate::model::{
    stride_stream_behavior, CurveId, EvalHooks, Evaluator, PredictionSummary, WindowInputs,
};
use crate::prepared::PreparedProfile;
use pmt_statstack::StackDistanceModel;
use pmt_uarch::MachineConfig;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

/// Complete input set of a cache query: which curve, at which per-level
/// line counts.
type CacheKey = (u32, [u64; 3]);

/// Complete machine-dependent input set of one window's stride walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct StrideKey {
    window: u32,
    crit_l3: u64,
    rob: u32,
    mshr: u32,
    /// Present iff the prefetcher is enabled — the only case in which
    /// the walk reads any of these fields.
    prefetch: Option<PrefetchKey>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct PrefetchKey {
    table_entries: u32,
    dram_page_bytes: u32,
    dram_latency: u32,
    deff_bits: u64,
}

/// Complete input set of one window's branch-penalty computation
/// (leaky-bucket Alg 3.2): the window fixes the dependency profile; the
/// scalars are everything else `branch_penalty` reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct BranchKey {
    window: u32,
    rob: u32,
    width: u32,
    frontend_depth: u32,
    interval_bits: u64,
    lat_bits: u64,
}

/// A snapshot of the predictor's memo tables: how many entries each
/// holds and how the lookups split into hits and misses. Every miss
/// inserts exactly one entry, so `*_entries == *_misses` always holds —
/// the snapshot reports both so the invariant is checkable from the
/// outside (the serve `/metrics` endpoint and the `speedup` binary both
/// surface these numbers).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Cache-query memo (curve × per-level line counts) entries.
    pub cache_entries: u64,
    /// Cache-query lookups answered from the memo.
    pub cache_hits: u64,
    /// Cache-query lookups that computed (and inserted).
    pub cache_misses: u64,
    /// Stride-walk memo entries.
    pub stride_entries: u64,
    /// Stride walks replayed from the memo.
    pub stride_hits: u64,
    /// Stride walks computed.
    pub stride_misses: u64,
    /// CP(ROB) memo entries.
    pub cp_entries: u64,
    /// Critical-path lookups replayed from the memo.
    pub cp_hits: u64,
    /// Critical-path lookups computed.
    pub cp_misses: u64,
    /// Branch-penalty (leaky bucket) memo entries.
    pub branch_entries: u64,
    /// Branch penalties replayed from the memo.
    pub branch_hits: u64,
    /// Branch penalties computed.
    pub branch_misses: u64,
}

impl MemoStats {
    /// Total lookups answered from any memo.
    pub fn hits(&self) -> u64 {
        self.cache_hits + self.stride_hits + self.cp_hits + self.branch_hits
    }

    /// Total lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.cache_misses + self.stride_misses + self.cp_misses + self.branch_misses
    }
}

/// Running hit/miss tallies, bumped inside the hooks.
#[derive(Debug, Default)]
struct MemoCounters {
    cache_hits: u64,
    cache_misses: u64,
    stride_hits: u64,
    stride_misses: u64,
    cp_hits: u64,
    cp_misses: u64,
    branch_hits: u64,
    branch_misses: u64,
}

/// Batched predictor for one prepared profile under one model
/// configuration: build once per chunk of design points, then call
/// [`predict_summary`](Self::predict_summary) per point (or
/// [`predict_batch_into`](Self::predict_batch_into) for a whole slice).
/// Later points reuse earlier points' memoized curve queries and stride
/// walks; results are bit-identical to
/// `IntervalModel::predict_summary`, in any evaluation order.
pub struct BatchPredictor<'p, 'a> {
    prepared: &'p PreparedProfile<'a>,
    config: ModelConfig,
    arena: CurveArena,
    cache_memo: HashMap<CacheKey, CachePoint>,
    stride_memo: HashMap<StrideKey, MemoryBehavior>,
    /// CP(ROB) per `(window, rob)`.
    cp_memo: HashMap<(u32, u32), f64>,
    /// Branch penalties per complete leaky-bucket input set.
    branch_memo: HashMap<BranchKey, BranchPenalty>,
    counters: MemoCounters,
}

impl<'p, 'a> BatchPredictor<'p, 'a> {
    /// Lay the profile's fitted curves out as flat SoA arrays and set up
    /// empty memo tables. One config clone total — per-point evaluation
    /// clones nothing.
    pub fn new(prepared: &'p PreparedProfile<'a>, config: &ModelConfig) -> BatchPredictor<'p, 'a> {
        BatchPredictor {
            prepared,
            config: config.clone(),
            arena: CurveArena::new(prepared),
            cache_memo: HashMap::new(),
            stride_memo: HashMap::new(),
            cp_memo: HashMap::new(),
            branch_memo: HashMap::new(),
            counters: MemoCounters::default(),
        }
    }

    /// Snapshot the memo tables: entry counts plus cumulative hit/miss
    /// tallies since construction.
    pub fn memo_stats(&self) -> MemoStats {
        MemoStats {
            cache_entries: self.cache_memo.len() as u64,
            cache_hits: self.counters.cache_hits,
            cache_misses: self.counters.cache_misses,
            stride_entries: self.stride_memo.len() as u64,
            stride_hits: self.counters.stride_hits,
            stride_misses: self.counters.stride_misses,
            cp_entries: self.cp_memo.len() as u64,
            cp_hits: self.counters.cp_hits,
            cp_misses: self.counters.cp_misses,
            branch_entries: self.branch_memo.len() as u64,
            branch_hits: self.counters.branch_hits,
            branch_misses: self.counters.branch_misses,
        }
    }

    /// The prepared profile this predictor evaluates.
    pub fn prepared(&self) -> &'p PreparedProfile<'a> {
        self.prepared
    }

    /// Predict one design point, reusing everything memoized so far.
    /// Bit-identical to `IntervalModel::with_config(machine,
    /// config).predict_summary(prepared)`.
    pub fn predict_summary(&mut self, machine: &MachineConfig) -> PredictionSummary {
        let mut hooks = BatchHooks {
            arena: &self.arena,
            cache_memo: &mut self.cache_memo,
            stride_memo: &mut self.stride_memo,
            cp_memo: &mut self.cp_memo,
            branch_memo: &mut self.branch_memo,
            counters: &mut self.counters,
        };
        Evaluator {
            machine,
            config: &self.config,
        }
        .run(self.prepared, false, &mut hooks)
        .0
    }

    /// Predict a whole chunk of design points in order, appending one
    /// summary per machine to `out` (cleared first).
    pub fn predict_batch_into<'m, I>(&mut self, machines: I, out: &mut Vec<PredictionSummary>)
    where
        I: IntoIterator<Item = &'m MachineConfig>,
    {
        out.clear();
        for machine in machines {
            out.push(self.predict_summary(machine));
        }
    }

    /// Predict a chunk of design points carrying opaque caller keys, in
    /// iteration order, returning `(key, summary)` pairs. This is what
    /// makes demultiplexing a multi-caller batch structural: each caller
    /// tags its point, and the tag rides back with the result — no
    /// positional bookkeeping at the call site. Results are bit-identical
    /// to calling [`predict_summary`](Self::predict_summary) per point
    /// (in any order: the memos are evaluation-order-independent).
    pub fn predict_tagged<K, I>(&mut self, points: I) -> Vec<(K, PredictionSummary)>
    where
        I: IntoIterator<Item = (K, MachineConfig)>,
    {
        points
            .into_iter()
            .map(|(key, machine)| {
                let summary = self.predict_summary(&machine);
                (key, summary)
            })
            .collect()
    }
}

/// The batched [`EvalHooks`]: arena-backed cache queries and memoized
/// stride walks. Borrows the predictor's parts separately so the
/// `Evaluator` can hold `&mut hooks` while the predictor's profile stays
/// borrowed.
struct BatchHooks<'s> {
    arena: &'s CurveArena,
    cache_memo: &'s mut HashMap<CacheKey, CachePoint>,
    stride_memo: &'s mut HashMap<StrideKey, MemoryBehavior>,
    cp_memo: &'s mut HashMap<(u32, u32), f64>,
    branch_memo: &'s mut HashMap<BranchKey, BranchPenalty>,
    counters: &'s mut MemoCounters,
}

impl EvalHooks for BatchHooks<'_> {
    fn cache_model(
        &mut self,
        id: CurveId,
        model: &Arc<StackDistanceModel>,
        lines: [u64; 3],
    ) -> CacheModel {
        let curve = id.arena_index();
        let point = match self.cache_memo.entry((curve, lines)) {
            Entry::Occupied(hit) => {
                self.counters.cache_hits += 1;
                *hit.get()
            }
            Entry::Vacant(slot) => {
                self.counters.cache_misses += 1;
                *slot.insert(self.arena.evaluate(curve, lines))
            }
        };
        CacheModel::from_parts(model, point.critical_rd, point.ratios, point.cold_fraction)
    }

    fn stride(
        &mut self,
        machine: &MachineConfig,
        deff: f64,
        inp: &WindowInputs<'_>,
        loads: f64,
        store_llc_misses: f64,
    ) -> MemoryBehavior {
        let key = StrideKey {
            window: inp.window,
            crit_l3: inp.loads_model.critical_rd[2],
            rob: machine.core.rob_size,
            mshr: machine.mem.mshr_entries,
            prefetch: machine.prefetcher.enabled.then(|| PrefetchKey {
                table_entries: machine.prefetcher.table_entries,
                dram_page_bytes: machine.mem.dram_page_bytes,
                dram_latency: machine.mem.dram_latency,
                deff_bits: deff.to_bits(),
            }),
        };
        let mut behavior = match self.stride_memo.entry(key) {
            Entry::Occupied(hit) => {
                self.counters.stride_hits += 1;
                *hit.get()
            }
            Entry::Vacant(slot) => {
                self.counters.stride_misses += 1;
                *slot.insert(stride_stream_behavior(
                    machine,
                    deff,
                    inp,
                    loads,
                    store_llc_misses,
                ))
            }
        };
        // Pass-through field, not part of the walk: always the current
        // point's value.
        behavior.llc_store_misses = store_llc_misses;
        behavior
    }

    fn critical_path(&mut self, inp: &WindowInputs<'_>, rob: u32) -> f64 {
        match self.cp_memo.entry((inp.window, rob)) {
            Entry::Occupied(hit) => {
                self.counters.cp_hits += 1;
                *hit.get()
            }
            Entry::Vacant(slot) => {
                self.counters.cp_misses += 1;
                *slot.insert(inp.deps.cp(rob))
            }
        }
    }

    fn branch(
        &mut self,
        inp: &WindowInputs<'_>,
        rob: u32,
        width: u32,
        frontend_depth: u32,
        interval: f64,
        lat: f64,
    ) -> BranchPenalty {
        let key = BranchKey {
            window: inp.window,
            rob,
            width,
            frontend_depth,
            interval_bits: interval.to_bits(),
            lat_bits: lat.to_bits(),
        };
        match self.branch_memo.entry(key) {
            Entry::Occupied(hit) => {
                self.counters.branch_hits += 1;
                *hit.get()
            }
            Entry::Vacant(slot) => {
                self.counters.branch_misses += 1;
                *slot.insert(branch_penalty(
                    inp.deps,
                    rob,
                    width,
                    frontend_depth,
                    interval,
                    lat,
                ))
            }
        }
    }
}

//! The effective dispatch rate (thesis §3.3–3.4, Eq 3.10):
//!
//! ```text
//! D_eff = min(D, ROB/(lat·CP(ROB)), N/N_p, N·U_i/N_i, N·U_j/(N_j·lat_j))
//! ```

use pmt_trace::UopClass;
use pmt_uarch::MachineConfig;
use serde::{Deserialize, Serialize};

/// Which term of Eq 3.10 limits the effective dispatch rate (Fig 3.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchLimiter {
    /// The physical dispatch width.
    Width,
    /// Inter-instruction dependences (the critical path).
    Dependences,
    /// Issue-port contention.
    FunctionalPort,
    /// Functional-unit counts (pipelined or not).
    FunctionalUnit,
}

impl DispatchLimiter {
    /// Display label matching Fig 3.6.
    pub fn label(self) -> &'static str {
        match self {
            DispatchLimiter::Width => "Dispatch",
            DispatchLimiter::Dependences => "Dependences",
            DispatchLimiter::FunctionalPort => "Functional port",
            DispatchLimiter::FunctionalUnit => "Functional unit",
        }
    }
}

/// The four candidate rates of Eq 3.10 and the resulting minimum.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DispatchBreakdown {
    /// The physical dispatch width `D`.
    pub width_limit: f64,
    /// `ROB / (lat · CP(ROB))` — Little's-law ILP limit (Eq 3.7).
    pub dependence_limit: f64,
    /// `N / max_p activity(p)` — issue-port limit.
    pub port_limit: f64,
    /// `min_i N·U_i/N_i` over pipelined units and
    /// `min_j N·U_j/(N_j·lat_j)` over non-pipelined units.
    pub unit_limit: f64,
    /// The effective dispatch rate (the minimum of the above).
    pub effective: f64,
    /// Which term is binding.
    pub limiter: DispatchLimiter,
}

/// Compute the effective dispatch rate for a window.
///
/// * `class_counts` — μop counts per class in the window (`N_i`),
/// * `critical_path` — `CP(ROB)` from the dependence profile,
/// * `avg_latency` — the average μop latency `lat` (including short L1/L2
///   load hits, thesis §3.3).
pub fn effective_dispatch_rate(
    machine: &MachineConfig,
    class_counts: &[f64; UopClass::COUNT],
    critical_path: f64,
    avg_latency: f64,
) -> DispatchBreakdown {
    let n: f64 = class_counts.iter().sum();
    let d = machine.core.dispatch_width as f64;
    let rob = machine.core.rob_size as f64;

    // Term 2: dependences (Eq 3.7).
    let dependence_limit = if critical_path > 0.0 && avg_latency > 0.0 {
        rob / (avg_latency * critical_path)
    } else {
        f64::INFINITY
    };

    // Term 3: issue ports via the greedy schedule of §3.4.
    let activity = machine.exec.ports.schedule_activity(class_counts);
    let max_activity = activity.iter().cloned().fold(0.0f64, f64::max);
    let port_limit = if max_activity > 0.0 {
        n / max_activity
    } else {
        f64::INFINITY
    };

    // Terms 4+5: functional units.
    let mut unit_limit = f64::INFINITY;
    for class in UopClass::ALL {
        let count = class_counts[class.index()];
        if count <= 0.0 {
            continue;
        }
        let res = machine.exec.resources(class);
        let lim = if res.pipelined {
            n * res.units as f64 / count
        } else {
            n * res.units as f64 / (count * res.latency as f64)
        };
        unit_limit = unit_limit.min(lim);
    }

    let mut effective = d;
    let mut limiter = DispatchLimiter::Width;
    for (value, kind) in [
        (dependence_limit, DispatchLimiter::Dependences),
        (port_limit, DispatchLimiter::FunctionalPort),
        (unit_limit, DispatchLimiter::FunctionalUnit),
    ] {
        if value < effective {
            effective = value;
            limiter = kind;
        }
    }

    DispatchBreakdown {
        width_limit: d,
        dependence_limit,
        port_limit,
        unit_limit,
        effective: effective.max(1e-6),
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmt_uarch::MachineConfig;

    fn counts(pairs: &[(UopClass, f64)]) -> [f64; UopClass::COUNT] {
        let mut c = [0.0; UopClass::COUNT];
        for &(class, n) in pairs {
            c[class.index()] = n;
        }
        c
    }

    /// Thesis Eq 3.8: ROB 16, unit latency, CP 6 → D_eff = 2.67.
    #[test]
    fn thesis_eq_3_8() {
        let mut m = MachineConfig::nehalem();
        m.core.rob_size = 16;
        // All-ALU window: ports/units do not bind.
        let c = counts(&[(UopClass::IntAlu, 16.0)]);
        let b = effective_dispatch_rate(&m, &c, 6.0, 1.0);
        assert!((b.dependence_limit - 16.0 / 6.0).abs() < 1e-9);
        assert!((b.effective - 16.0 / 6.0).abs() < 1e-9);
        assert_eq!(b.limiter, DispatchLimiter::Dependences);
    }

    /// Thesis Eq 3.11 (Table 3.1 left mix): 100 μops — 40 loads, 20
    /// stores, 20 ALU, 10 FP multiply, 10 branches; ROB 64, CP 8,
    /// lat 2 → D_eff = 2.5, port limited by the load port.
    #[test]
    fn thesis_eq_3_11() {
        let mut m = MachineConfig::nehalem();
        m.core.rob_size = 64;
        let c = counts(&[
            (UopClass::Load, 40.0),
            (UopClass::Store, 20.0),
            (UopClass::IntAlu, 20.0),
            (UopClass::FpMul, 10.0),
            (UopClass::Branch, 10.0),
        ]);
        let b = effective_dispatch_rate(&m, &c, 8.0, 2.0);
        assert!((b.dependence_limit - 4.0).abs() < 1e-9);
        assert!((b.port_limit - 2.5).abs() < 1e-9, "{}", b.port_limit);
        assert!((b.unit_limit - 2.5).abs() < 1e-9, "{}", b.unit_limit);
        assert!((b.effective - 2.5).abs() < 1e-9);
    }

    /// Thesis Eq 3.12 (Table 3.1 right mix): replacing the FP multiplies
    /// with 10 non-pipelined 5-cycle divides lowers D_eff to 2.
    #[test]
    fn thesis_eq_3_12() {
        let mut m = MachineConfig::nehalem();
        m.core.rob_size = 64;
        // Configure a 5-cycle non-pipelined divider as in the example.
        use pmt_uarch::{ExecConfig, OpResources, PortMap, PortRoute};
        use UopClass::*;
        let ports = PortMap::new(
            6,
            vec![
                (IntAlu, PortRoute::one_of(&[0, 1])),
                (Move, PortRoute::one_of(&[0, 1])),
                (IntMul, PortRoute::only(1)),
                (IntDiv, PortRoute::only(0)),
                (FpAlu, PortRoute::only(1)),
                (FpMul, PortRoute::only(0)),
                (FpDiv, PortRoute::only(0)),
                (Load, PortRoute::only(2)),
                (Store, PortRoute::all_of(3, &[4])),
                (Branch, PortRoute::only(5)),
            ],
        );
        m.exec = ExecConfig::new(
            vec![
                (IntAlu, OpResources::new(1, true, 2)),
                (Move, OpResources::new(1, true, 2)),
                (IntMul, OpResources::new(3, true, 1)),
                (IntDiv, OpResources::new(5, false, 1)),
                (FpAlu, OpResources::new(3, true, 1)),
                (FpMul, OpResources::new(5, true, 1)),
                (FpDiv, OpResources::new(5, false, 1)),
                (Load, OpResources::new(2, true, 1)),
                (Store, OpResources::new(1, true, 1)),
                (Branch, OpResources::new(1, true, 1)),
            ],
            ports,
        );
        let c = counts(&[
            (UopClass::Load, 40.0),
            (UopClass::Store, 20.0),
            (UopClass::IntAlu, 20.0),
            (UopClass::IntDiv, 10.0),
            (UopClass::Branch, 10.0),
        ]);
        let b = effective_dispatch_rate(&m, &c, 8.0, 2.0);
        assert!((b.unit_limit - 2.0).abs() < 1e-9, "{}", b.unit_limit);
        assert!((b.effective - 2.0).abs() < 1e-9);
        assert_eq!(b.limiter, DispatchLimiter::FunctionalUnit);
    }

    #[test]
    fn all_alu_code_is_port_limited_on_nehalem() {
        // Three ALU-capable ports < 4-wide dispatch.
        let m = MachineConfig::nehalem();
        let c = counts(&[(UopClass::IntAlu, 50.0), (UopClass::Move, 50.0)]);
        let b = effective_dispatch_rate(&m, &c, 2.0, 1.0);
        assert_eq!(b.limiter, DispatchLimiter::FunctionalPort);
        assert!((b.effective - 3.0).abs() < 1e-9);
    }

    #[test]
    fn balanced_window_hits_width() {
        let m = MachineConfig::nehalem();
        let c = counts(&[
            (UopClass::IntAlu, 41.0),
            (UopClass::Load, 24.0),
            (UopClass::Store, 10.0),
            (UopClass::Branch, 15.0),
            (UopClass::FpAlu, 10.0),
        ]);
        let b = effective_dispatch_rate(&m, &c, 2.0, 1.0);
        assert_eq!(b.limiter, DispatchLimiter::Width, "{b:?}");
        assert!((b.effective - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_benign() {
        let m = MachineConfig::nehalem();
        let c = [0.0; UopClass::COUNT];
        let b = effective_dispatch_rate(&m, &c, 0.0, 0.0);
        assert!(b.effective > 0.0);
    }
}

//! The one-time, machine-independent compilation of an
//! [`ApplicationProfile`] — fit once, predict the whole design space.
//!
//! The paper's headline claim is that design-space exploration is fast
//! *because* profiling is micro-architecture independent: profile once,
//! predict many. [`PreparedProfile`] makes the "once" part explicit. It
//! fits every StatStack model the interval model will ever query (the
//! per-micro-trace load/store histograms, the global load/store
//! histograms for combined mode, and the instruction path), precomputes
//! the per-window μop class counts, entropy fallbacks and the stride-MLP
//! virtual-stream skeletons — all of which depend only on the profile —
//! and shares the fitted models read-only (`Arc`) so rayon workers
//! evaluating different design points never refit or copy them.
//!
//! Per design point, [`IntervalModel::predict_prepared`] then performs
//! only the machine-*dependent* work: binary-searched miss-ratio /
//! critical-reuse-distance queries against the prefitted models plus the
//! Eq 3.1 arithmetic.
//!
//! ```
//! use pmt_core::{IntervalModel, PreparedProfile};
//! use pmt_profiler::{Profiler, ProfilerConfig};
//! use pmt_uarch::{DesignSpace, MachineConfig};
//! use pmt_workloads::WorkloadSpec;
//!
//! let spec = WorkloadSpec::by_name("astar").unwrap();
//! let profile = Profiler::new(ProfilerConfig::fast_test())
//!     .profile_named("astar", &mut spec.trace(20_000));
//! let prepared = PreparedProfile::new(&profile); // fit once...
//! for point in DesignSpace::small().enumerate() {
//!     // ...query many: bit-identical to `predict`, far cheaper.
//!     let summary = IntervalModel::new(&point.machine).predict_summary(&prepared);
//!     assert!(summary.cpi() > 0.0);
//! }
//! ```
//!
//! [`IntervalModel::predict_prepared`]: crate::IntervalModel::predict_prepared

use crate::mlp::VirtualStream;
use pmt_profiler::{ApplicationProfile, StaticLoadProfile};
use pmt_statstack::StackDistanceModel;
use pmt_trace::UopClass;
use std::sync::Arc;

/// Machine-independent precomputation for one micro-trace window.
pub(crate) struct PreparedWindow {
    /// μop class counts scaled to the window weight.
    pub class_counts: [f64; UopClass::COUNT],
    /// Branch entropy with the too-few-branches fallback applied.
    pub entropy: f64,
    /// Fitted StatStack model of the window's load accesses.
    pub loads: Arc<StackDistanceModel>,
    /// Fitted StatStack model of the window's store accesses.
    pub stores: Arc<StackDistanceModel>,
    /// Prebuilt virtual-stream skeleton for the stride-MLP model.
    pub stream: VirtualStream,
}

/// A one-time, machine-independent compilation of an
/// [`ApplicationProfile`]: every StatStack model prefitted, every
/// per-window scalar precomputed. Borrow it wherever the profile lives;
/// it is `Sync`, so one instance serves a whole rayon-parallel sweep.
pub struct PreparedProfile<'a> {
    profile: &'a ApplicationProfile,
    /// Fitted instruction-path model.
    inst: Arc<StackDistanceModel>,
    /// Fitted global (combined-mode) load model.
    global_loads: Arc<StackDistanceModel>,
    /// Fitted global (combined-mode) store model.
    global_stores: Arc<StackDistanceModel>,
    /// Per-micro-trace precomputation, parallel to `profile.micro_traces`.
    windows: Vec<PreparedWindow>,
    /// Combined-mode μop class counts.
    combined_class_counts: [f64; UopClass::COUNT],
    /// Combined-mode stride sample (the first micro-trace's static loads)
    /// and its stream length — snapshotted here so the skeleton below and
    /// the slice its `owner` indices point into can never diverge.
    combined_static: &'a [StaticLoadProfile],
    combined_uops: u64,
    /// Combined-mode virtual-stream skeleton (`combined_static` with the
    /// *global* dependence distribution).
    combined_stream: VirtualStream,
}

impl<'a> PreparedProfile<'a> {
    /// Fit all machine-independent models of `profile` once.
    pub fn new(profile: &'a ApplicationProfile) -> PreparedProfile<'a> {
        let windows = profile
            .micro_traces
            .iter()
            .map(|t| {
                let upi = if t.mix.instructions() > 0 {
                    t.mix.uops_per_instruction()
                } else {
                    profile.uops_per_instruction().max(1.0)
                };
                let n_uops = t.weight_instructions as f64 * upi;
                let mut class_counts = [0.0; UopClass::COUNT];
                for c in UopClass::ALL {
                    class_counts[c.index()] = t.mix.fraction(c) * n_uops;
                }
                // Fall back to the global entropy when the micro-trace saw
                // too few branches to estimate its own.
                let entropy = if t.branches >= 64 {
                    t.branch_entropy
                } else {
                    profile.branch.entropy
                };
                PreparedWindow {
                    class_counts,
                    entropy,
                    loads: Arc::new(StackDistanceModel::from_reuse(&t.loads)),
                    stores: Arc::new(StackDistanceModel::from_reuse(&t.stores)),
                    stream: VirtualStream::build(&t.static_loads, &t.load_deps, t.uops),
                }
            })
            .collect();

        let n_uops = profile.total_uops.max(1.0);
        let mut combined_class_counts = [0.0; UopClass::COUNT];
        for c in UopClass::ALL {
            combined_class_counts[c.index()] = profile.mix.fraction(c) * n_uops;
        }
        // Combined mode samples strides from the first micro-trace but
        // draws dependence depths from the global distribution.
        let (combined_static, combined_uops) = profile
            .micro_traces
            .first()
            .map(|t| (t.static_loads.as_slice(), t.uops))
            .unwrap_or((&[], 0));
        PreparedProfile {
            inst: Arc::new(StackDistanceModel::from_reuse(&profile.memory.inst)),
            global_loads: Arc::new(StackDistanceModel::from_reuse(&profile.memory.loads)),
            global_stores: Arc::new(StackDistanceModel::from_reuse(&profile.memory.stores)),
            windows,
            combined_class_counts,
            combined_static,
            combined_uops,
            combined_stream: VirtualStream::build(
                combined_static,
                &profile.load_deps,
                combined_uops,
            ),
            profile,
        }
    }

    /// The profile this preparation was compiled from.
    pub fn profile(&self) -> &'a ApplicationProfile {
        self.profile
    }

    /// Fitted instruction-path StatStack model.
    pub(crate) fn inst_model(&self) -> &Arc<StackDistanceModel> {
        &self.inst
    }

    /// Fitted global load/store models (combined mode).
    pub(crate) fn global_models(&self) -> (&Arc<StackDistanceModel>, &Arc<StackDistanceModel>) {
        (&self.global_loads, &self.global_stores)
    }

    /// Per-micro-trace precomputations, parallel to
    /// `profile().micro_traces`.
    pub(crate) fn windows(&self) -> &[PreparedWindow] {
        &self.windows
    }

    /// Combined-mode class counts.
    pub(crate) fn combined_class_counts(&self) -> &[f64; UopClass::COUNT] {
        &self.combined_class_counts
    }

    /// Combined-mode stride sample, stream length and skeleton, as one
    /// unit: `combined_stream`'s `owner` indices index into exactly this
    /// slice.
    pub(crate) fn combined_stride_inputs(&self) -> (&'a [StaticLoadProfile], u64, &VirtualStream) {
        (
            self.combined_static,
            self.combined_uops,
            &self.combined_stream,
        )
    }
}

//! The batched-kernel conformance suite: for every machine, profile,
//! model configuration and batch size, [`BatchPredictor`] must return
//! exactly the bytes the scalar `predict_summary` does. Batching moves
//! work (SoA curve queries, cross-point memoization) — never arithmetic.
//!
//! CI runs this suite twice: once as-is (the host's SIMD level) and once
//! with `PMT_FORCE_SCALAR=1`, so both runtime-dispatch paths are pinned
//! on every push.

use pmt_core::kernels::lanes::LANES;
use pmt_core::{BatchPredictor, IntervalModel, ModelConfig, PreparedProfile};
use pmt_profiler::{ApplicationProfile, Profiler, ProfilerConfig};
use pmt_uarch::{CacheConfig, DesignSpace, MachineConfig};
use pmt_workloads::WorkloadSpec;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Shared profiles (profiling dominates test time; predictions don't).
fn profiles() -> &'static [ApplicationProfile] {
    static PROFILES: OnceLock<Vec<ApplicationProfile>> = OnceLock::new();
    PROFILES.get_or_init(|| {
        ["astar", "mcf", "gcc"]
            .iter()
            .map(|name| {
                let spec = WorkloadSpec::by_name(name).expect("suite member");
                Profiler::new(ProfilerConfig::fast_test())
                    .profile_named(name, &mut spec.trace(25_000))
            })
            .collect()
    })
}

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serializes")
}

/// Random machines far outside the thesis grid (same envelope as the
/// prepared-identity golden). Frequency, voltage and the name vary too:
/// they are prediction-inert, so machines differing only in them replay
/// each other's memo entries — and must still match the scalar path
/// byte for byte.
fn machine_strategy() -> impl Strategy<Value = MachineConfig> {
    (
        (1u32..=8, 32u32..=512, 3u32..=7, 7u32..=11, 11u32..=14),
        (
            100u32..=400,
            4u32..=64,
            any::<bool>(),
            2u32..=9,
            80u32..=130,
        ),
    )
        .prop_map(
            |((width, rob, l1_exp, l2_exp, l3_exp), (dram, mshr, prefetcher, freq, vdd))| {
                let base = MachineConfig::nehalem();
                let mut m = if prefetcher {
                    MachineConfig::nehalem_with_prefetcher()
                } else {
                    base.clone()
                };
                m.name = format!("rand-w{width}r{rob}f{freq}");
                m.core = m.core.with_dispatch_width(width).with_rob(rob);
                m.core.frequency_ghz = freq as f64 * 0.5;
                m.core.vdd = vdd as f64 / 100.0;
                m.caches.l1i = CacheConfig::new(1 << l1_exp, 4, 64, 1);
                m.caches.l1d = CacheConfig::new(1 << l1_exp, 8, 64, base.caches.l1d.latency);
                m.caches.l2 = CacheConfig::new(1 << l2_exp, 8, 64, base.caches.l2.latency);
                m.caches.l3 = CacheConfig::new(1 << l3_exp, 16, 64, 28);
                m.mem.dram_latency = dram;
                m.mem.mshr_entries = mshr;
                m
            },
        )
}

/// One batch through one predictor vs per-point scalar models, bytes
/// compared via serde_json (shortest-round-trip floats: equal strings ⇔
/// equal bits).
fn assert_batch_matches_scalar(
    profile: &ApplicationProfile,
    config: &ModelConfig,
    machines: &[MachineConfig],
    ctx: &str,
) {
    let prepared = PreparedProfile::new(profile);
    let mut batch = BatchPredictor::new(&prepared, config);
    let mut out = Vec::new();
    batch.predict_batch_into(machines.iter(), &mut out);
    assert_eq!(out.len(), machines.len(), "{ctx}: batch length");
    for (machine, got) in machines.iter().zip(&out) {
        let want = IntervalModel::with_config(machine, config.clone()).predict_summary(&prepared);
        assert_eq!(json(&want), json(got), "{ctx} @ {}", machine.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Adversarial batch sizes around the SIMD lane width: every prefix
    /// of a random (LANES+1)-machine batch — sizes 1, LANES−1, LANES and
    /// LANES+1 — through a *fresh* predictor (each size sees a different
    /// memo-fill order), against per-point scalar models. Random
    /// profiles and both evaluation modes.
    #[test]
    fn batch_matches_scalar_at_lane_straddling_sizes(
        machines in prop::collection::vec(machine_strategy(), LANES + 1),
        profile_idx in 0usize..3,
        combined in any::<bool>(),
    ) {
        let profile = &profiles()[profile_idx];
        let config = if combined {
            ModelConfig::ispass_2015()
        } else {
            ModelConfig::default()
        };
        for size in [1, LANES - 1, LANES, LANES + 1] {
            assert_batch_matches_scalar(
                profile,
                &config,
                &machines[..size],
                &format!("size {size} combined {combined}"),
            );
        }
    }

    /// Replay: the same machines pushed through one predictor twice.
    /// The second pass is pure memo hits and must reproduce the first
    /// pass — and the scalar path — byte for byte.
    #[test]
    fn memo_hits_replay_identical_bytes(
        machines in prop::collection::vec(machine_strategy(), LANES),
        profile_idx in 0usize..3,
    ) {
        let profile = &profiles()[profile_idx];
        let config = ModelConfig::default();
        let prepared = PreparedProfile::new(profile);
        let mut batch = BatchPredictor::new(&prepared, &config);
        let first: Vec<String> = machines.iter().map(|m| json(&batch.predict_summary(m))).collect();
        for (machine, want) in machines.iter().zip(&first) {
            prop_assert_eq!(&json(&batch.predict_summary(machine)), want);
            let scalar = IntervalModel::with_config(machine, config.clone())
                .predict_summary(&prepared);
            prop_assert_eq!(&json(&scalar), want);
        }
    }
}

/// The empty batch: no output, no panic, output vector cleared.
#[test]
fn empty_batch_is_empty() {
    let profile = &profiles()[0];
    let prepared = PreparedProfile::new(profile);
    let mut batch = BatchPredictor::new(&prepared, &ModelConfig::default());
    let mut out = vec![IntervalModel::new(&MachineConfig::nehalem()).predict_summary(&prepared)];
    batch.predict_batch_into(std::iter::empty::<&MachineConfig>(), &mut out);
    assert!(out.is_empty(), "stale summaries must be cleared");
}

/// Machines differing only in frequency, voltage and name present
/// identical inputs to every memoized computation (prediction never
/// reads those fields — seconds and power are scaled downstream), so
/// after the first rung a DVFS ladder replays pure memo hits. Every
/// rung must still match its own scalar model byte for byte.
#[test]
fn frequency_only_variants_replay_memo_hits_identically() {
    let profile = &profiles()[1];
    let prepared = PreparedProfile::new(profile);
    let config = ModelConfig::default();
    let mut batch = BatchPredictor::new(&prepared, &config);
    for (i, freq) in [1.0, 1.6, 2.66, 3.2, 4.0].into_iter().enumerate() {
        let mut m = MachineConfig::nehalem();
        m.name = format!("dvfs-{i}");
        m.core.frequency_ghz = freq;
        m.core.vdd = 0.9 + 0.1 * i as f64;
        let want = IntervalModel::with_config(&m, config.clone()).predict_summary(&prepared);
        assert_eq!(json(&want), json(&batch.predict_summary(&m)), "freq {freq}");
    }
}

/// The golden acceptance scale: the full 243-point Table 6.3 space
/// through ONE predictor (maximum memo reuse — the production shape), in
/// both evaluation modes, every point byte-identical to the scalar path.
#[test]
fn batch_matches_scalar_across_the_full_243_point_space() {
    let profile = &profiles()[0];
    let prepared = PreparedProfile::new(profile);
    for config in [ModelConfig::default(), ModelConfig::ispass_2015()] {
        let mut batch = BatchPredictor::new(&prepared, &config);
        let points = DesignSpace::thesis_table_6_3().enumerate();
        assert_eq!(points.len(), 243);
        for point in points {
            let want = IntervalModel::with_config(&point.machine, config.clone())
                .predict_summary(&prepared);
            assert_eq!(
                json(&want),
                json(&batch.predict_summary(&point.machine)),
                "astar @ {}",
                point.machine.name
            );
        }
    }
}

/// A profile with no micro-traces falls back to combined mode; the
/// batched path must follow it bit-for-bit.
#[test]
fn batch_handles_empty_micro_traces() {
    let mut profile = profiles()[2].clone();
    profile.micro_traces.clear();
    let machines = vec![
        MachineConfig::nehalem(),
        MachineConfig::nehalem_with_prefetcher(),
    ];
    assert_batch_matches_scalar(
        &profile,
        &ModelConfig::default(),
        &machines,
        "no micro-traces",
    );
}

/// `predict_tagged` is the demux primitive cross-request batching rides
/// on: opaque caller keys go in with their machines, `(key, summary)`
/// pairs come out in iteration order, and every summary is bit-identical
/// to a solo `predict_summary` of the same point.
#[test]
fn predict_tagged_keys_ride_with_bit_identical_summaries() {
    let profile = &profiles()[0];
    let prepared = PreparedProfile::new(profile);
    let config = ModelConfig::default();
    let points: Vec<(String, MachineConfig)> = [1.0, 1.6, 2.66, 3.2]
        .iter()
        .enumerate()
        .map(|(i, &freq)| {
            let mut m = MachineConfig::nehalem();
            m.core.frequency_ghz = freq;
            m.core.rob_size = 64 << (i % 3);
            (format!("caller-{i}"), m)
        })
        .collect();

    let mut batch = BatchPredictor::new(&prepared, &config);
    let tagged = batch.predict_tagged(points.clone());
    assert_eq!(tagged.len(), points.len());
    for ((key, summary), (want_key, machine)) in tagged.iter().zip(&points) {
        assert_eq!(key, want_key, "keys must ride back in iteration order");
        let solo = IntervalModel::with_config(machine, config.clone()).predict_summary(&prepared);
        assert_eq!(json(summary), json(&solo), "{key}");
    }
}

/// The memo-stats snapshot: entries equal misses (every miss inserts
/// exactly one entry), a replayed frequency-only point is all hits, and
/// the tallies are cumulative across calls.
#[test]
fn memo_stats_track_entries_hits_and_misses() {
    let profile = &profiles()[1];
    let prepared = PreparedProfile::new(profile);
    let mut batch = BatchPredictor::new(&prepared, &ModelConfig::default());
    let empty = batch.memo_stats();
    assert_eq!(empty, pmt_core::MemoStats::default());

    let machine = MachineConfig::nehalem();
    batch.predict_summary(&machine);
    let cold = batch.memo_stats();
    assert!(cold.misses() > 0, "a cold point must populate the memos");
    assert_eq!(cold.cache_entries, cold.cache_misses);
    assert_eq!(cold.stride_entries, cold.stride_misses);
    assert_eq!(cold.cp_entries, cold.cp_misses);
    assert_eq!(cold.branch_entries, cold.branch_misses);

    // A frequency-only variant presents identical inputs to every memo:
    // pure hits, no new entries.
    let mut dvfs = machine.clone();
    dvfs.core.frequency_ghz = 1.6;
    batch.predict_summary(&dvfs);
    let warm = batch.memo_stats();
    assert_eq!(warm.misses(), cold.misses(), "no new entries on a replay");
    assert_eq!(
        warm.hits(),
        cold.hits() + cold.misses(),
        "the replay hits every memo the cold point populated"
    );
    assert_eq!(warm.cache_entries, cold.cache_entries);

    // A new ROB size misses the ROB-keyed memos but keeps the cache
    // queries hot.
    let mut big_rob = machine.clone();
    big_rob.core.rob_size *= 2;
    batch.predict_summary(&big_rob);
    let third = batch.memo_stats();
    assert!(third.cp_misses > warm.cp_misses, "new ROB recomputes CP");
    assert_eq!(
        third.cache_misses, warm.cache_misses,
        "unchanged hierarchy replays every cache query"
    );
}

//! Property-based tests for the interval-model components.

use pmt_core::dispatch::effective_dispatch_rate;
use pmt_core::llc_chaining::{chain_penalty_per_window, ChainInputs};
use pmt_core::mlp::mshr_soft_cap;
use pmt_trace::UopClass;
use pmt_uarch::MachineConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn deff_respects_all_bounds(
        counts in prop::collection::vec(0.0f64..1e5, UopClass::COUNT),
        cp in 1.0f64..200.0,
        lat in 0.5f64..10.0
    ) {
        let m = MachineConfig::nehalem();
        let mut arr = [0.0; UopClass::COUNT];
        arr.copy_from_slice(&counts);
        let b = effective_dispatch_rate(&m, &arr, cp, lat);
        prop_assert!(b.effective > 0.0);
        prop_assert!(b.effective <= m.core.dispatch_width as f64 + 1e-9);
        prop_assert!(b.effective <= b.dependence_limit + 1e-9);
        prop_assert!(b.effective <= b.port_limit + 1e-9);
        prop_assert!(b.effective <= b.unit_limit + 1e-9);
    }

    #[test]
    fn longer_critical_paths_never_speed_dispatch(
        counts in prop::collection::vec(1.0f64..1e4, UopClass::COUNT),
        cp in 1.0f64..100.0
    ) {
        let m = MachineConfig::nehalem();
        let mut arr = [0.0; UopClass::COUNT];
        arr.copy_from_slice(&counts);
        let short = effective_dispatch_rate(&m, &arr, cp, 1.0).effective;
        let long = effective_dispatch_rate(&m, &arr, cp * 2.0, 1.0).effective;
        prop_assert!(long <= short + 1e-9);
    }

    #[test]
    fn mshr_cap_is_monotone_and_bounded(raw in 0.0f64..200.0, mshr in 1u32..64) {
        let capped = mshr_soft_cap(raw, mshr);
        prop_assert!(capped <= raw + 1e-9);
        prop_assert!(capped >= raw.min(mshr as f64) - 1e-9);
        // Monotone in raw parallelism.
        let more = mshr_soft_cap(raw + 1.0, mshr);
        prop_assert!(more >= capped);
    }

    #[test]
    fn chain_penalty_is_nonnegative_and_monotone_in_hits(
        hits in 0.0f64..40.0,
        loads in 1.0f64..64.0,
        f1 in 0.01f64..1.0
    ) {
        let mk = |h: f64| ChainInputs {
            llc_hits_per_rob: h,
            loads_per_rob: loads.max(h),
            independent_load_fraction: f1,
            llc_latency: 30.0,
            rob: 128.0,
            deff: 3.0,
        };
        let p = chain_penalty_per_window(&mk(hits));
        prop_assert!(p >= 0.0);
        let p_more = chain_penalty_per_window(&mk(hits + 5.0));
        prop_assert!(p_more + 1e-9 >= p);
    }
}

//! Differential suite for the branchless kernel search: on every sorted
//! slice — duplicate knots, single-point fits, extreme reuse distances —
//! `search_f64`/`search_u64` must return the *index-exact* result of the
//! `std` binary search the scalar query path uses. "Some matching index"
//! is not enough: `Ok(i)` feeds parallel `floors`/`survival` arrays, so a
//! different duplicate would change predictions. This suite is the
//! tripwire that fails loudly if a future `std` release changes its probe
//! sequence.

use pmt_core::kernels::search::{search_f64, search_u64};
use proptest::prelude::*;

fn assert_matches_std_f64(xs: &[f64], target: f64) {
    assert_eq!(
        search_f64(xs, target),
        xs.binary_search_by(|x| x.partial_cmp(&target).unwrap()),
        "f64 divergence on {xs:?} target {target}"
    );
}

fn assert_matches_std_u64(xs: &[u64], target: u64) {
    assert_eq!(
        search_u64(xs, target),
        xs.binary_search(&target),
        "u64 divergence on {xs:?} target {target}"
    );
}

/// A sorted f64 slice biased toward duplicate runs: steps are drawn from
/// a small set where most values repeat the previous knot — the shape
/// zero-survival curve segments produce.
fn sorted_with_duplicates() -> impl Strategy<Value = Vec<f64>> {
    (
        prop::collection::vec(0u32..4, 0..24),
        prop::collection::vec(0.0f64..10.0, 24),
    )
        .prop_map(|(kinds, raws)| {
            let mut acc = 0.0f64;
            kinds
                .iter()
                .zip(&raws)
                .map(|(kind, raw)| {
                    acc += match kind {
                        0 | 1 => 0.0, // duplicate the previous knot
                        2 => 1.0,
                        _ => *raw,
                    };
                    acc
                })
                .collect()
        })
}

proptest! {
    /// Hits: every element of every generated slice must be found at the
    /// exact index std picks (the duplicate-run discriminator).
    #[test]
    fn f64_hits_agree_with_std(xs in sorted_with_duplicates()) {
        for &x in &xs {
            assert_matches_std_f64(&xs, x);
        }
    }

    /// Misses: arbitrary targets (between, below, above all knots) must
    /// report std's insertion point.
    #[test]
    fn f64_misses_agree_with_std(
        xs in sorted_with_duplicates(),
        target in -5.0f64..200.0,
    ) {
        assert_matches_std_f64(&xs, target);
    }

    /// The u64 floors arrays: strictly increasing but with extreme jumps
    /// (reuse distances span 1 .. u64::MAX). Probe every element, its
    /// neighbours, and saturating extremes.
    #[test]
    fn u64_extreme_floors_agree_with_std(
        steps in prop::collection::vec((0u64..3, any::<u64>()), 1..16),
        probe in any::<u64>(),
    ) {
        let mut xs = Vec::with_capacity(steps.len());
        let mut acc = 0u64;
        for (kind, raw) in steps {
            let step = match kind {
                0 => 1,
                1 => raw % 1000 + 1,
                _ => raw | 1, // huge strides toward u64::MAX
            };
            acc = acc.saturating_add(step);
            xs.push(acc);
        }
        for &x in &xs {
            assert_matches_std_u64(&xs, x);
            assert_matches_std_u64(&xs, x.saturating_sub(1));
            assert_matches_std_u64(&xs, x.saturating_add(1));
        }
        assert_matches_std_u64(&xs, 0);
        assert_matches_std_u64(&xs, u64::MAX);
        assert_matches_std_u64(&xs, probe);
    }

    /// Single-point fits (the degenerate curve an empty histogram
    /// produces) at arbitrary probe offsets.
    #[test]
    fn single_point_fits_agree_with_std(knot in 0.0f64..100.0, probe in -1.0f64..101.0) {
        assert_matches_std_f64(&[knot], probe);
        assert_matches_std_f64(&[knot], knot);
    }
}

/// All-duplicate slices of every length: the worst case for probe-path
/// agreement, checked exhaustively rather than sampled.
#[test]
fn all_equal_slices_agree_with_std_exhaustively() {
    for len in 1..=33usize {
        let xs = vec![7.0f64; len];
        let std_result = xs.binary_search_by(|x| x.partial_cmp(&7.0).unwrap());
        assert_eq!(search_f64(&xs, 7.0), std_result, "len {len}");
        let ys = vec![7u64; len];
        assert_eq!(search_u64(&ys, 7), ys.binary_search(&7), "len {len}");
    }
}

//! The tentpole guarantee of the prepared-profile fast path: for every
//! machine configuration, `predict_prepared`, `predict_summary` and the
//! batched [`BatchPredictor`] return exactly the bytes `predict` does —
//! the preparation (and the batching) moves work, never arithmetic.

use pmt_core::{BatchPredictor, IntervalModel, ModelConfig, PreparedProfile};
use pmt_profiler::{ApplicationProfile, Profiler, ProfilerConfig};
use pmt_uarch::{CacheConfig, DesignSpace, MachineConfig};
use pmt_workloads::WorkloadSpec;
use proptest::prelude::*;
use std::sync::OnceLock;

fn profile_of(name: &str, n: u64) -> ApplicationProfile {
    let spec = WorkloadSpec::by_name(name).expect("suite member");
    Profiler::new(ProfilerConfig::fast_test()).profile_named(name, &mut spec.trace(n))
}

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serializes")
}

/// Assert the four prediction paths agree byte for byte on one machine.
fn assert_identical(model: &IntervalModel, profile: &ApplicationProfile, ctx: &str) {
    let prepared = PreparedProfile::new(profile);
    let legacy = model.predict(profile);
    let fast = model.predict_prepared(&prepared);
    assert_eq!(
        json(&legacy),
        json(&fast),
        "predict_prepared drifted: {ctx}"
    );
    let summary = model.predict_summary(&prepared);
    assert_eq!(
        json(&legacy.summary()),
        json(&summary),
        "predict_summary drifted: {ctx}"
    );
    let mut batch = BatchPredictor::new(&prepared, model.config());
    assert_eq!(
        json(&legacy.summary()),
        json(&batch.predict_summary(model.machine())),
        "batched drifted: {ctx}"
    );
}

/// Three workloads × the 27-point validation subspace, bytes compared via
/// serde_json (shortest-round-trip floats: equal strings ⇔ equal bits).
#[test]
fn prepared_is_bit_identical_across_validation_subspace() {
    for name in ["astar", "mcf", "gcc"] {
        let profile = profile_of(name, 30_000);
        let prepared = PreparedProfile::new(&profile);
        for point in DesignSpace::validation_subspace().enumerate() {
            let model = IntervalModel::new(&point.machine);
            let legacy = model.predict(&profile);
            assert_eq!(
                json(&legacy),
                json(&model.predict_prepared(&prepared)),
                "{name} @ {}",
                point.machine.name
            );
            assert_eq!(
                json(&legacy.summary()),
                json(&model.predict_summary(&prepared)),
                "{name} summary @ {}",
                point.machine.name
            );
        }
    }
}

/// The golden acceptance check: the full 243-point Table 6.3 space, one
/// preparation, every point bit-identical to the legacy path — and one
/// shared [`BatchPredictor`] (memos warm across all 243 points) matching
/// the legacy summaries byte for byte.
#[test]
fn prepared_is_bit_identical_across_the_full_243_point_space() {
    let profile = profile_of("astar", 30_000);
    let prepared = PreparedProfile::new(&profile);
    let mut batch = BatchPredictor::new(&prepared, &ModelConfig::default());
    let points = DesignSpace::thesis_table_6_3().enumerate();
    assert_eq!(points.len(), 243);
    for point in points {
        let model = IntervalModel::new(&point.machine);
        let legacy = model.predict(&profile);
        assert_eq!(
            json(&legacy),
            json(&model.predict_prepared(&prepared)),
            "astar @ {}",
            point.machine.name
        );
        assert_eq!(
            json(&legacy.summary()),
            json(&batch.predict_summary(&point.machine)),
            "astar batched @ {}",
            point.machine.name
        );
    }
}

/// Combined (ISPASS'15) mode exercises the global-histogram fits and the
/// combined stream skeleton — a different prepared code path.
#[test]
fn prepared_is_bit_identical_in_combined_mode() {
    let profile = profile_of("mcf", 30_000);
    for point in DesignSpace::small().enumerate() {
        let model = IntervalModel::with_config(&point.machine, ModelConfig::ispass_2015());
        assert_identical(
            &model,
            &profile,
            &format!("combined @ {}", point.machine.name),
        );
    }
}

/// A profile with no micro-traces must fall back to combined mode
/// identically on both paths.
#[test]
fn prepared_handles_empty_micro_traces() {
    let mut profile = profile_of("gcc", 20_000);
    profile.micro_traces.clear();
    let model = IntervalModel::new(&MachineConfig::nehalem());
    assert_identical(&model, &profile, "no micro-traces");
}

fn shared_profile() -> &'static ApplicationProfile {
    static PROFILE: OnceLock<ApplicationProfile> = OnceLock::new();
    PROFILE.get_or_init(|| profile_of("milc", 30_000))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random machine configurations far outside the thesis grid: the
    /// prepared path may never depend on the machine resembling the
    /// design space.
    #[test]
    fn prepared_matches_legacy_on_random_machines(
        width in 1u32..=8,
        rob in 32u32..=512,
        l1_exp in 3u32..=7,   // 8–128 KB
        l2_exp in 7u32..=11,  // 128–2048 KB
        l3_exp in 11u32..=14, // 2–16 MB
        dram in 100u32..=400,
        mshr in 4u32..=64,
        prefetcher in any::<bool>(),
    ) {
        let base = MachineConfig::nehalem();
        let mut m = if prefetcher {
            MachineConfig::nehalem_with_prefetcher()
        } else {
            base.clone()
        };
        m.core = m.core.with_dispatch_width(width).with_rob(rob);
        m.caches.l1i = CacheConfig::new(1 << l1_exp, 4, 64, 1);
        m.caches.l1d = CacheConfig::new(1 << l1_exp, 8, 64, base.caches.l1d.latency);
        m.caches.l2 = CacheConfig::new(1 << l2_exp, 8, 64, base.caches.l2.latency);
        m.caches.l3 = CacheConfig::new(1 << l3_exp, 16, 64, 28);
        m.mem.dram_latency = dram;
        m.mem.mshr_entries = mshr;

        let profile = shared_profile();
        let model = IntervalModel::new(&m);
        let prepared = PreparedProfile::new(profile);
        prop_assert_eq!(
            json(&model.predict(profile)),
            json(&model.predict_prepared(&prepared))
        );
        prop_assert_eq!(
            json(&model.predict(profile).summary()),
            json(&model.predict_summary(&prepared))
        );
        let mut batch = BatchPredictor::new(&prepared, model.config());
        prop_assert_eq!(
            json(&model.predict(profile).summary()),
            json(&batch.predict_summary(&m))
        );
    }
}

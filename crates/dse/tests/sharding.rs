//! Sharded streaming sweeps: the determinism contract, end to end.
//!
//! A sharded run must be indistinguishable from the single-process run
//! it decomposes — not approximately, but **bit for bit**: shard the
//! global chunk list, fold each shard (possibly killed and resumed from
//! a checkpoint), merge the snapshots, and the merged summary's every
//! f64 equals the unsharded fold's. These tests assert that contract on
//! real model predictions, plus the validation `merge_shards` performs
//! on untrusted snapshot sets.

use pmt_core::PreparedProfile;
use pmt_dse::{
    chunk_count, merge_shards, shard_chunk_range, Objective, ShardAccumulators, StreamingSummary,
    StreamingSweep, TopK,
};
use pmt_profiler::{ApplicationProfile, Profiler, ProfilerConfig};
use pmt_uarch::DesignSpace;
use pmt_workloads::WorkloadSpec;
use std::sync::OnceLock;

fn profile() -> &'static ApplicationProfile {
    static PROFILE: OnceLock<ApplicationProfile> = OnceLock::new();
    PROFILE.get_or_init(|| {
        let spec = WorkloadSpec::by_name("astar").unwrap();
        Profiler::new(ProfilerConfig::fast_test()).profile_named("astar", &mut spec.trace(20_000))
    })
}

/// A sweep small enough to run many times: 32 points in 8 chunks of 4.
fn sweep(profile: &ApplicationProfile) -> StreamingSweep<'_> {
    StreamingSweep::new(profile)
        .chunk(4)
        .top_k(3)
        .objective(Objective::Energy)
}

/// Bit-exact equality witness: the vendored serde serializes f64 via
/// shortest-round-trip formatting, so equal JSON ⇔ equal bits.
fn json<T: serde::Serialize>(value: &T) -> String {
    let mut out = String::new();
    serde::Serialize::to_json(value, &mut out);
    out
}

fn run_shards(shard_count: usize) -> Vec<ShardAccumulators> {
    let prof = profile();
    let prepared = PreparedProfile::new(prof);
    let space = DesignSpace::small();
    (0..shard_count)
        .map(|i| sweep(prof).run_shard_prepared(&prepared, &space, i, shard_count, None, 0, |_| {}))
        .collect()
}

fn reference() -> StreamingSummary {
    sweep(profile()).run(&DesignSpace::small())
}

#[test]
fn sharded_merge_is_bit_identical_to_single_process() {
    let reference = reference();
    for shard_count in [1, 2, 3, 5, 8, 11] {
        let merged = merge_shards(run_shards(shard_count)).unwrap();
        assert_eq!(
            json(&merged),
            json(&reference),
            "merge of {shard_count} shards diverged from the single-process run"
        );
        // The JSON equality already implies these, but spell out the
        // floats the contract is really about.
        assert_eq!(merged.cpi.sum.to_bits(), reference.cpi.sum.to_bits());
        assert_eq!(merged.power.sum.to_bits(), reference.power.sum.to_bits());
        assert_eq!(
            merged.seconds.sum.to_bits(),
            reference.seconds.sum.to_bits()
        );
    }
}

#[test]
fn kill_and_resume_reproduces_the_uninterrupted_shard() {
    let prof = profile();
    let prepared = PreparedProfile::new(prof);
    let space = DesignSpace::small();

    // Uninterrupted shard 1 of 3, checkpointing after every chunk.
    let mut checkpoints: Vec<ShardAccumulators> = Vec::new();
    let uninterrupted = sweep(prof).run_shard_prepared(&prepared, &space, 1, 3, None, 1, |snap| {
        checkpoints.push(snap.clone())
    });
    assert!(uninterrupted.is_complete());
    assert_eq!(checkpoints.last().unwrap(), &uninterrupted);
    assert!(
        checkpoints.len() >= 2,
        "need an intermediate checkpoint to simulate a kill"
    );

    // "Kill" the shard after its first checkpoint: resume from that
    // snapshot and from every later one — each must converge on the
    // byte-identical final snapshot.
    for partial in &checkpoints[..checkpoints.len() - 1] {
        assert!(!partial.is_complete());
        let resumed =
            sweep(prof).run_shard_prepared(&prepared, &space, 1, 3, Some(partial), 1, |_| {});
        assert_eq!(json(&resumed), json(&uninterrupted));
    }

    // Resuming an already-complete shard is a no-op returning it as-is.
    let resumed =
        sweep(prof).run_shard_prepared(&prepared, &space, 1, 3, Some(&uninterrupted), 1, |_| {
            panic!("complete shard must not re-checkpoint")
        });
    assert_eq!(json(&resumed), json(&uninterrupted));

    // And a merge using the resumed shard matches the single-process run.
    let shard0 = sweep(prof).run_shard_prepared(&prepared, &space, 0, 3, None, 0, |_| {});
    let shard2 = sweep(prof).run_shard_prepared(&prepared, &space, 2, 3, None, 0, |_| {});
    let merged = merge_shards(vec![shard0, resumed, shard2]).unwrap();
    assert_eq!(json(&merged), json(&reference()));
}

#[test]
fn merge_validates_the_snapshot_set() {
    let shards = run_shards(3);

    let err = merge_shards(Vec::new()).unwrap_err();
    assert!(err.contains("no shard snapshots"), "{err}");

    // An incomplete shard is refused with a resume hint.
    let mut incomplete = shards.clone();
    incomplete[1].chunks_done -= 1;
    let err = merge_shards(incomplete).unwrap_err();
    assert!(err.contains("incomplete"), "{err}");
    assert!(err.contains("resume"), "{err}");

    // A missing shard breaks the tiling.
    let gap = vec![shards[0].clone(), shards[2].clone()];
    let err = merge_shards(gap).unwrap_err();
    assert!(err.contains("tile") || err.contains("partition"), "{err}");

    // A duplicated shard also breaks the tiling.
    let dup = vec![shards[0].clone(), shards[0].clone(), shards[1].clone()];
    assert!(merge_shards(dup).is_err());

    // Mixed geometry (different chunk size) is refused.
    let prof = profile();
    let prepared = PreparedProfile::new(prof);
    let space = DesignSpace::small();
    let other_chunk = StreamingSweep::new(prof)
        .chunk(8)
        .top_k(3)
        .objective(Objective::Energy)
        .run_shard_prepared(&prepared, &space, 0, 3, None, 0, |_| {});
    let mixed = vec![other_chunk, shards[1].clone(), shards[2].clone()];
    assert!(merge_shards(mixed).is_err());
}

#[test]
fn shard_ranges_tile_the_global_chunk_list() {
    for total in [0usize, 1, 7, 8, 103, 1024] {
        for count in [1usize, 2, 3, 5, 16, 200] {
            let mut expect_lo = 0;
            for i in 0..count {
                let (lo, hi) = shard_chunk_range(total, i, count);
                assert_eq!(lo, expect_lo, "gap/overlap at shard {i}/{count} of {total}");
                assert!(hi >= lo);
                expect_lo = hi;
            }
            assert_eq!(expect_lo, total, "shards of {total} chunks do not cover it");
        }
    }
    assert_eq!(chunk_count(0, 1024), 0);
    assert_eq!(chunk_count(1, 1024), 1);
    assert_eq!(chunk_count(1024, 1024), 1);
    assert_eq!(chunk_count(1025, 1024), 2);
}

#[test]
#[should_panic(expected = "TopK::merge requires equal k")]
fn topk_merge_with_mismatched_k_panics() {
    // Silently keeping the smaller k would make a merge of snapshots
    // taken with different --top values look successful while dropping
    // candidates; the geometry check upstream should make this
    // unreachable, and this assert keeps it loud if it ever isn't.
    let mut a: TopK<u32> = TopK::new(3);
    let b: TopK<u32> = TopK::new(4);
    a.merge(b);
}

//! Property-based tests for Pareto machinery.

use pmt_dse::{ParetoFront, PruningQuality};
use proptest::prelude::*;

fn arb_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.1f64..100.0, 0.1f64..100.0), 2..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn front_members_are_mutually_nondominated(pts in arb_points()) {
        let front = ParetoFront::of(&pts);
        let idx = front.indices();
        prop_assert!(!idx.is_empty());
        for &i in &idx {
            for &j in &idx {
                if i == j { continue; }
                let dom = pts[j].0 <= pts[i].0 && pts[j].1 <= pts[i].1
                    && (pts[j].0 < pts[i].0 || pts[j].1 < pts[i].1);
                prop_assert!(!dom);
            }
        }
    }

    #[test]
    fn every_dominated_point_has_a_dominator_on_the_front(pts in arb_points()) {
        let front = ParetoFront::of(&pts);
        for i in 0..pts.len() {
            if front.is_optimal(i) { continue; }
            let found = front.indices().iter().any(|&j| {
                pts[j].0 <= pts[i].0 && pts[j].1 <= pts[i].1
                    && (pts[j].0 < pts[i].0 || pts[j].1 < pts[i].1)
            });
            prop_assert!(found, "dominated point {i} lacks a frontier dominator");
        }
    }

    #[test]
    fn metrics_are_probabilities(truth in arb_points(), noise in 0.5f64..2.0) {
        let predicted: Vec<(f64, f64)> = truth
            .iter()
            .enumerate()
            .map(|(i, &(d, p))| if i % 2 == 0 { (d * noise, p) } else { (d, p * noise) })
            .collect();
        let q = PruningQuality::evaluate(&truth, &predicted);
        for v in [q.sensitivity, q.specificity, q.accuracy, q.hvr] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "{q:?}");
        }
    }

    #[test]
    fn self_prediction_is_perfect(truth in arb_points()) {
        let q = PruningQuality::evaluate(&truth, &truth);
        prop_assert_eq!(q.sensitivity, 1.0);
        prop_assert_eq!(q.specificity, 1.0);
        prop_assert!((q.hvr - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_scaling_preserves_pruning(truth in arb_points(), s in 0.1f64..10.0) {
        let scaled: Vec<(f64, f64)> = truth.iter().map(|&(d, p)| (d * s, p * s)).collect();
        let q = PruningQuality::evaluate(&truth, &scaled);
        prop_assert_eq!(q.sensitivity, 1.0);
        prop_assert_eq!(q.specificity, 1.0);
    }
}

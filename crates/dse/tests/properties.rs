//! Property-based tests for the Pareto machinery and the streaming
//! accumulators.

use pmt_core::Moments;
use pmt_dse::{ParetoAccumulator, ParetoFront, PruningQuality, TopK};
use proptest::prelude::*;

fn arb_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.1f64..100.0, 0.1f64..100.0), 2..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn front_members_are_mutually_nondominated(pts in arb_points()) {
        let front = ParetoFront::of(&pts);
        let idx = front.indices();
        prop_assert!(!idx.is_empty());
        for &i in &idx {
            for &j in &idx {
                if i == j { continue; }
                let dom = pts[j].0 <= pts[i].0 && pts[j].1 <= pts[i].1
                    && (pts[j].0 < pts[i].0 || pts[j].1 < pts[i].1);
                prop_assert!(!dom);
            }
        }
    }

    #[test]
    fn every_dominated_point_has_a_dominator_on_the_front(pts in arb_points()) {
        let front = ParetoFront::of(&pts);
        for i in 0..pts.len() {
            if front.is_optimal(i) { continue; }
            let found = front.indices().iter().any(|&j| {
                pts[j].0 <= pts[i].0 && pts[j].1 <= pts[i].1
                    && (pts[j].0 < pts[i].0 || pts[j].1 < pts[i].1)
            });
            prop_assert!(found, "dominated point {i} lacks a frontier dominator");
        }
    }

    #[test]
    fn metrics_are_probabilities(truth in arb_points(), noise in 0.5f64..2.0) {
        let predicted: Vec<(f64, f64)> = truth
            .iter()
            .enumerate()
            .map(|(i, &(d, p))| if i % 2 == 0 { (d * noise, p) } else { (d, p * noise) })
            .collect();
        let q = PruningQuality::evaluate(&truth, &predicted);
        for v in [q.sensitivity, q.specificity, q.accuracy, q.hvr] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "{q:?}");
        }
    }

    #[test]
    fn self_prediction_is_perfect(truth in arb_points()) {
        let q = PruningQuality::evaluate(&truth, &truth);
        prop_assert_eq!(q.sensitivity, 1.0);
        prop_assert_eq!(q.specificity, 1.0);
        prop_assert!((q.hvr - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_scaling_preserves_pruning(truth in arb_points(), s in 0.1f64..10.0) {
        let scaled: Vec<(f64, f64)> = truth.iter().map(|&(d, p)| (d * s, p * s)).collect();
        let q = PruningQuality::evaluate(&truth, &scaled);
        prop_assert_eq!(q.sensitivity, 1.0);
        prop_assert_eq!(q.specificity, 1.0);
    }

    // ---------------------------------------------------------------
    // Streaming accumulators vs the materialized Vec-based results.
    // ---------------------------------------------------------------

    /// The online frontier equals the materialized classification no
    /// matter how the stream is cut into shards or which order the
    /// shards merge back.
    #[test]
    fn streamed_pareto_equals_materialized(
        pts in arb_points(),
        cut in 0.0f64..1.0,
        swap in any::<bool>(),
    ) {
        let expect = ParetoFront::of(&pts).indices();

        // Single stream.
        let mut whole = ParetoAccumulator::new();
        for (i, &p) in pts.iter().enumerate() {
            whole.push(i, p, ());
        }
        prop_assert_eq!(whole.ids(), expect.clone());

        // Two shards, merged in either order.
        let at = ((pts.len() as f64) * cut) as usize;
        let mut a = ParetoAccumulator::new();
        let mut b = ParetoAccumulator::new();
        for (i, &p) in pts.iter().enumerate() {
            if i < at { a.push(i, p, ()); } else { b.push(i, p, ()); }
        }
        let merged = if swap {
            b.merge(a);
            b
        } else {
            a.merge(b);
            a
        };
        prop_assert_eq!(merged.ids(), expect.clone());
        // The deterministic output order is by id.
        let sorted_ids: Vec<usize> = merged.into_sorted().iter().map(|e| e.id).collect();
        prop_assert_eq!(sorted_ids, expect);
    }

    /// The bounded heap keeps exactly the K smallest under the strict
    /// (key, id) order — i.e. sorting the materialized list and
    /// truncating — regardless of sharding.
    #[test]
    fn streamed_top_k_equals_materialized_sort(
        keys in prop::collection::vec(0.0f64..10.0, 1..60),
        k in 0usize..12,
        cut in 0.0f64..1.0,
    ) {
        let mut expect: Vec<(f64, usize)> =
            keys.iter().copied().enumerate().map(|(i, x)| (x, i)).collect();
        expect.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        expect.truncate(k);

        let mut whole = TopK::new(k);
        for (i, &x) in keys.iter().enumerate() {
            whole.push(x, i, ());
        }
        let got: Vec<(f64, usize)> =
            whole.into_sorted().iter().map(|e| (e.key, e.id)).collect();
        prop_assert_eq!(&got, &expect);

        // Sharded fold merges to the same set.
        let at = ((keys.len() as f64) * cut) as usize;
        let mut a = TopK::new(k);
        let mut b = TopK::new(k);
        for (i, &x) in keys.iter().enumerate() {
            if i < at { a.push(x, i, ()); } else { b.push(x, i, ()); }
        }
        b.merge(a);
        let merged: Vec<(f64, usize)> =
            b.into_sorted().iter().map(|e| (e.key, e.id)).collect();
        prop_assert_eq!(merged, expect);
    }

    /// A single-chunk streaming fold of the moments is bitwise the naive
    /// sequential fold, and a chunked shard-merge (same chunk shape) is
    /// bitwise identical whether the chunk summaries are folded inline
    /// or merged afterwards — the serial/parallel contract.
    #[test]
    fn streamed_moments_match_materialized_and_shard_exactly(
        xs in prop::collection::vec(-100.0f64..100.0, 1..80),
        chunk in 1usize..20,
    ) {
        // Single chunk == naive fold.
        let mut m = Moments::new();
        for &x in &xs {
            m.push(x);
        }
        let naive_sum: f64 = xs.iter().fold(0.0, |acc, &x| acc + x);
        prop_assert_eq!(m.n, xs.len());
        prop_assert_eq!(m.sum.to_bits(), naive_sum.to_bits());
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(m.min.to_bits(), min.to_bits());
        prop_assert_eq!(m.max.to_bits(), max.to_bits());

        // Chunked: "serial" (merge as you go) == "parallel" (fold chunks
        // independently, merge in chunk order).
        let mut serial = Moments::new();
        for c in xs.chunks(chunk) {
            let mut part = Moments::new();
            for &x in c {
                part.push(x);
            }
            serial.merge(&part);
        }
        let parts: Vec<Moments> = xs
            .chunks(chunk)
            .map(|c| {
                let mut part = Moments::new();
                for &x in c {
                    part.push(x);
                }
                part
            })
            .collect();
        let mut parallel = Moments::new();
        for p in &parts {
            parallel.merge(p);
        }
        prop_assert_eq!(serial.sum.to_bits(), parallel.sum.to_bits());
        prop_assert_eq!(serial, parallel);
    }
}

// ---------------------------------------------------------------------
// The full streaming engine on random small spaces (few cases: each one
// pays real model predictions).
// ---------------------------------------------------------------------

mod streaming_engine {
    use super::*;
    use pmt_dse::{LazyDesignSpace, ParetoFront, SpaceEvaluation, StreamingSweep, SweepConfig};
    use pmt_profiler::{ApplicationProfile, Profiler, ProfilerConfig};
    use pmt_uarch::{DesignPoint, DesignSpace};
    use pmt_workloads::WorkloadSpec;
    use std::sync::OnceLock;

    fn profile() -> &'static ApplicationProfile {
        static PROFILE: OnceLock<ApplicationProfile> = OnceLock::new();
        PROFILE.get_or_init(|| {
            let spec = WorkloadSpec::by_name("astar").unwrap();
            Profiler::new(ProfilerConfig::fast_test())
                .profile_named("astar", &mut spec.trace(20_000))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// On a random subspace with a random chunk size, the streaming
        /// engine reproduces the materialized sweep exactly (frontier
        /// membership and coordinates bit-for-bit), and its parallel
        /// fold equals its serial fold bit-for-bit.
        #[test]
        fn engine_matches_materialized_on_random_small_spaces(
            mask in 1u32..(1 << 5),
            chunk in 1usize..40,
            k in 1usize..8,
            shards in 1usize..6,
        ) {
            // A random axis-subset of the 32-point test grid.
            let full = DesignSpace::small();
            let pick = |values: &[u32], bit: u32| -> Vec<u32> {
                if mask & (1 << bit) != 0 { values.to_vec() } else { values[..1].to_vec() }
            };
            let space = DesignSpace {
                dispatch_widths: pick(&full.dispatch_widths, 0),
                rob_sizes: pick(&full.rob_sizes, 1),
                l1_kb: pick(&full.l1_kb, 2),
                l2_kb: pick(&full.l2_kb, 3),
                l3_kb: pick(&full.l3_kb, 4),
            };
            let points: Vec<DesignPoint> = space.enumerate();
            let eval =
                SpaceEvaluation::run_serial(&points, profile(), None, &SweepConfig::default());

            let ser = StreamingSweep::new(profile())
                .chunk(chunk)
                .top_k(k)
                .serial()
                .run(&space);
            let par = StreamingSweep::new(profile()).chunk(chunk).top_k(k).run(&space);

            // Streaming == materialized.
            prop_assert_eq!(ser.evaluated, points.len());
            let front = ParetoFront::of(&eval.model_points());
            prop_assert_eq!(ser.frontier_ids(), front.indices());
            for e in &ser.frontier {
                let o = &eval.outcomes[e.id];
                prop_assert_eq!(e.coords.0.to_bits(), o.model_seconds.to_bits());
                prop_assert_eq!(e.coords.1.to_bits(), o.model_power.to_bits());
            }

            // Parallel == serial, bit for bit.
            prop_assert_eq!(ser.frontier_ids(), par.frontier_ids());
            prop_assert_eq!(ser.cpi.sum.to_bits(), par.cpi.sum.to_bits());
            prop_assert_eq!(ser.power.sum.to_bits(), par.power.sum.to_bits());
            prop_assert_eq!(ser.seconds.sum.to_bits(), par.seconds.sum.to_bits());
            let ser_top: Vec<(u64, usize)> =
                ser.top.iter().map(|e| (e.key.to_bits(), e.id)).collect();
            let par_top: Vec<(u64, usize)> =
                par.top.iter().map(|e| (e.key.to_bits(), e.id)).collect();
            prop_assert_eq!(ser_top, par_top);

            // Sharded + merged == unsharded, bit for bit, whatever the
            // shard count and chunk size (shards may even outnumber
            // chunks, leaving some empty).
            let prepared = pmt_core::PreparedProfile::new(profile());
            let snaps: Vec<_> = (0..shards)
                .map(|i| {
                    StreamingSweep::new(profile())
                        .chunk(chunk)
                        .top_k(k)
                        .run_shard_prepared(&prepared, &space, i, shards, None, 2, |_| {})
                })
                .collect();
            let merged = pmt_dse::merge_shards(snaps).unwrap();
            let mut merged_json = String::new();
            serde::Serialize::to_json(&merged, &mut merged_json);
            let mut serial_json = String::new();
            serde::Serialize::to_json(&ser, &mut serial_json);
            prop_assert_eq!(merged_json, serial_json);

            // Sanity: the space the engine saw is the one we enumerated.
            prop_assert_eq!(LazyDesignSpace::len(&space), points.len());
        }
    }
}

//! The tentpole guarantee of the streaming engine, asserted with a
//! counting allocator: a ≥100k-point design space sweeps to a Pareto
//! frontier + top-K **without materializing** the point or prediction
//! `Vec`s — live-heap growth during the sweep stays bounded by the
//! answer (frontier + top-K + chunk bookkeeping), not by the space.
//!
//! Debug builds shrink the space (the model is ~10× slower unoptimized);
//! the release run — what CI's `--release --workspace` pass executes —
//! covers the full ≥100k-point claim.

use pmt_dse::{LazyDesignSpace, Objective, ProductSpace, StreamingSweep};
use pmt_profiler::{ApplicationProfile, Profiler, ProfilerConfig};
use pmt_workloads::WorkloadSpec;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A `System` wrapper tracking live bytes and the high-water mark.
/// Integration tests are separate binaries, so installing it here
/// affects only this test.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        unsafe { System.dealloc(p, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Live-heap bytes right now.
fn live() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Reset the high-water mark to the current live level and return a
/// probe for the growth since.
fn mark() -> usize {
    let now = live();
    PEAK.store(now, Ordering::Relaxed);
    now
}

fn peak_growth_since(baseline: usize) -> usize {
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

fn profile() -> ApplicationProfile {
    let spec = WorkloadSpec::by_name("astar").unwrap();
    Profiler::new(ProfilerConfig::fast_test()).profile_named("astar", &mut spec.trace(20_000))
}

#[test]
fn big_space_streams_in_bounded_memory() {
    // Release: the full ≥100k-point demo space. Debug: a 2880-point
    // subset of the same axes, same assertion (the bound does not scale
    // with the space, which is exactly the point).
    let space = if cfg!(debug_assertions) {
        ProductSpace::new(pmt_uarch::MachineConfig::nehalem())
            .dispatch_widths(&[2, 4, 6])
            .rob_sizes(&[64, 128, 256])
            .l1_kb(&[16, 32, 64, 128])
            .l2_kb(&[128, 256, 512, 1024])
            .l3_kb(&[2048, 8192])
            .mshr_entries(&[8, 16])
            .frequency_ghz(&[2.0, 2.66, 3.2, 3.6, 4.0])
    } else {
        ProductSpace::frontier_demo()
    };
    if !cfg!(debug_assertions) {
        assert!(space.len() >= 100_000, "space is {} points", space.len());
    }

    let profile = profile();
    let sweep = StreamingSweep::new(&profile)
        .top_k(16)
        .objective(Objective::Energy);

    let baseline = mark();
    let summary = sweep.run(&space);
    let growth = peak_growth_since(baseline);

    assert_eq!(summary.evaluated, space.len());
    assert!(!summary.frontier.is_empty());
    assert_eq!(summary.top.len(), 16);
    assert_eq!(summary.cpi.n, space.len());

    // Materializing this space would need ≥ points × sizeof(DesignPoint)
    // (machine config + name String ≈ 400 B each) plus the outcome Vec.
    // The streaming fold must stay far below that — a fixed 8 MiB
    // ceiling covers prepared-profile scratch, rayon bookkeeping, the
    // accumulators AND the batched kernels' per-chunk staging (this run
    // takes the default batched path: each in-flight chunk holds its
    // admitted `DesignPoint`s, summaries, memo tables and lane arrays —
    // all O(chunk), never O(space)) with a wide margin, while sitting
    // ~5× under even the bare 100k-point outcome Vec (~9.6 MB of
    // `PointOutcome`s, before the dominant per-point `MachineConfig`s).
    let ceiling = 8 << 20;
    assert!(
        growth < ceiling,
        "streaming sweep peaked {growth} bytes above baseline (ceiling {ceiling})"
    );
}

#[test]
fn serial_and_parallel_streaming_agree_at_scale() {
    // A mid-size space (648 points) — big enough for many chunks, small
    // enough for debug runs.
    let space = ProductSpace::new(pmt_uarch::MachineConfig::nehalem())
        .dispatch_widths(&[2, 4, 6])
        .rob_sizes(&[64, 128, 256])
        .l1_kb(&[16, 32, 64])
        .l2_kb(&[128, 256])
        .l3_kb(&[2048, 4096])
        .mshr_entries(&[8, 16])
        .frequency_ghz(&[2.0, 2.66, 3.2]);
    let profile = profile();
    let ser = StreamingSweep::new(&profile)
        .chunk(256)
        .serial()
        .run(&space);
    let par = StreamingSweep::new(&profile).chunk(256).run(&space);
    assert_eq!(ser.evaluated, space.len());
    assert_eq!(ser.frontier_ids(), par.frontier_ids());
    for (a, b) in ser.frontier.iter().zip(&par.frontier) {
        assert_eq!(a.coords.0.to_bits(), b.coords.0.to_bits());
        assert_eq!(a.coords.1.to_bits(), b.coords.1.to_bits());
    }
    assert_eq!(ser.cpi.sum.to_bits(), par.cpi.sum.to_bits());
    assert_eq!(ser.power.sum.to_bits(), par.power.sum.to_bits());
    assert_eq!(ser.seconds.sum.to_bits(), par.seconds.sum.to_bits());
}

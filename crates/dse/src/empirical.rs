//! The empirical comparator model (thesis §7.5).
//!
//! A per-workload ridge regression from design-space coordinates to CPI
//! and power, trained on simulated samples — the black-box alternative the
//! thesis compares its mechanistic model against (Figs 7.10–7.13). It
//! interpolates well on average but misses trend shapes, which is exactly
//! what the Pareto metrics expose.

use pmt_uarch::DesignPoint;
use serde::{Deserialize, Serialize};

/// Feature vector of a design point: normalized log-scaled parameters plus
/// pairwise products (a quadratic basis).
fn features(p: &DesignPoint) -> Vec<f64> {
    let (w, rob, l1, l2, l3) = p.coords;
    let raw = [
        (w as f64).ln(),
        (rob as f64).ln(),
        (l1 as f64).ln(),
        (l2 as f64).ln(),
        (l3 as f64).ln(),
    ];
    let mut f = vec![1.0];
    f.extend_from_slice(&raw);
    for i in 0..raw.len() {
        for j in i..raw.len() {
            f.push(raw[i] * raw[j]);
        }
    }
    f
}

/// A fitted ridge regression (one output).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Ridge {
    weights: Vec<f64>,
}

impl Ridge {
    /// Fit `y ≈ X·w` with L2 regularization `lambda`.
    fn fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Ridge {
        let n_feat = xs[0].len();
        // Normal equations: (XᵀX + λI) w = Xᵀy.
        let mut a = vec![vec![0.0; n_feat]; n_feat];
        let mut b = vec![0.0; n_feat];
        for (x, &y) in xs.iter().zip(ys) {
            for i in 0..n_feat {
                b[i] += x[i] * y;
                for j in 0..n_feat {
                    a[i][j] += x[i] * x[j];
                }
            }
        }
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += lambda;
        }
        let weights = solve(a, b);
        Ridge { weights }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        x.iter().zip(&self.weights).map(|(a, b)| a * b).sum()
    }
}

/// Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-12 {
            continue;
        }
        let pivot_row = a[col].clone();
        for row in col + 1..n {
            let factor = a[row][col] / diag;
            for (k, v) in a[row].iter_mut().enumerate().skip(col) {
                *v -= factor * pivot_row[k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = if a[row][row].abs() < 1e-12 {
            0.0
        } else {
            acc / a[row][row]
        };
    }
    x
}

/// The per-workload empirical model: design coordinates → (CPI, power).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EmpiricalModel {
    cpi: Ridge,
    power: Ridge,
}

impl EmpiricalModel {
    /// Train on simulated (design, CPI, power) samples.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two training samples are given.
    pub fn train(samples: &[(&DesignPoint, f64, f64)]) -> EmpiricalModel {
        assert!(samples.len() >= 2, "need training data");
        let xs: Vec<Vec<f64>> = samples.iter().map(|(p, _, _)| features(p)).collect();
        let cpis: Vec<f64> = samples.iter().map(|&(_, c, _)| c).collect();
        let powers: Vec<f64> = samples.iter().map(|&(_, _, p)| p).collect();
        EmpiricalModel {
            cpi: Ridge::fit(&xs, &cpis, 1e-3),
            power: Ridge::fit(&xs, &powers, 1e-3),
        }
    }

    /// Predicted CPI for a design.
    pub fn predict_cpi(&self, point: &DesignPoint) -> f64 {
        self.cpi.predict(&features(point)).max(0.05)
    }

    /// Predicted power for a design.
    pub fn predict_power(&self, point: &DesignPoint) -> f64 {
        self.power.predict(&features(point)).max(0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmt_uarch::DesignSpace;

    #[test]
    fn solver_inverts_small_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve(a, b);
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_linear_function_of_design_parameters() {
        let points = DesignSpace::thesis_table_6_3().enumerate();
        // Synthetic truth: CPI = 3/ln(width) + 100/rob; power = width².
        let truth: Vec<(&DesignPoint, f64, f64)> = points
            .iter()
            .map(|p| {
                let (w, rob, _, _, _) = p.coords;
                (
                    p,
                    3.0 / (w as f64).ln() + 100.0 / rob as f64,
                    (w as f64).powi(2),
                )
            })
            .collect();
        let model = EmpiricalModel::train(&truth);
        for (p, cpi, power) in truth.iter().step_by(17) {
            let pc = model.predict_cpi(p);
            let pp = model.predict_power(p);
            assert!((pc - cpi).abs() / cpi < 0.25, "cpi {pc} vs {cpi}");
            assert!((pp - power).abs() / power < 0.25, "power {pp} vs {power}");
        }
    }

    #[test]
    fn extrapolation_is_bounded_below() {
        let points = DesignSpace::small().enumerate();
        let truth: Vec<(&DesignPoint, f64, f64)> = points.iter().map(|p| (p, 1.0, 20.0)).collect();
        let model = EmpiricalModel::train(&truth);
        assert!(model.predict_cpi(&points[0]) > 0.0);
        assert!(model.predict_power(&points[0]) > 0.0);
    }
}

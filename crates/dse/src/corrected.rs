//! The optional corrected layer over a streamed sweep: apply a trained
//! [`ResidualModel`] to the survivors of a [`StreamingSummary`]
//! **after** the fold.
//!
//! Correction deliberately never participates in the accumulators: the
//! frontier, top-K and moments are folded from analytical predictions
//! only, so a sweep's bytes — and with them the sharding, checkpoint
//! and CLI/daemon byte-identity contracts — are the same whether or not
//! a corrector is loaded. What the corrector changes is the *reading*
//! of the survivors: each frontier/top-K entry's design id is decoded
//! back into its machine configuration and the learned residual is
//! applied to that entry's carried CPI/power. The handful of survivors
//! (frontier + K entries) is bounded by the answer, not the space, so
//! this stays O(answer) like the accumulators themselves.

use crate::space::LazyDesignSpace;
use crate::streaming::{StreamPoint, StreamingSummary};
use pmt_ml::ResidualModel;
use pmt_profiler::ApplicationProfile;

/// One summary survivor with the learned residual applied: the
/// analytical values it was folded with, side by side with the
/// corrected ones.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorrectedEntry {
    /// Dense design id within the swept space.
    pub id: usize,
    /// Analytical CPI (exactly the folded value).
    pub cpi: f64,
    /// Analytical power in watts (exactly the folded value).
    pub power_w: f64,
    /// Corrected CPI.
    pub corrected_cpi: f64,
    /// Corrected power in watts.
    pub corrected_power_w: f64,
}

/// Correct the top-K survivors of a summary. Order is preserved (still
/// ranked by the *analytical* objective — the fold's verdict); the
/// summary itself is untouched.
pub fn corrected_top<S: LazyDesignSpace + ?Sized>(
    summary: &StreamingSummary,
    space: &S,
    model: &ResidualModel,
    profile: &ApplicationProfile,
) -> Vec<CorrectedEntry> {
    summary
        .top
        .iter()
        .map(|e| correct_one(e.id, &e.item, space, model, profile))
        .collect()
}

/// Correct the Pareto-frontier survivors of a summary, in the
/// frontier's deterministic id order; the summary itself is untouched.
pub fn corrected_frontier<S: LazyDesignSpace + ?Sized>(
    summary: &StreamingSummary,
    space: &S,
    model: &ResidualModel,
    profile: &ApplicationProfile,
) -> Vec<CorrectedEntry> {
    summary
        .frontier
        .iter()
        .map(|e| correct_one(e.id, &e.item, space, model, profile))
        .collect()
}

fn correct_one<S: LazyDesignSpace + ?Sized>(
    id: usize,
    point: &StreamPoint,
    space: &S,
    model: &ResidualModel,
    profile: &ApplicationProfile,
) -> CorrectedEntry {
    let machine = space.point_at(id).machine;
    let corrected = model.correct(&machine, profile, point.cpi, point.power);
    CorrectedEntry {
        id,
        cpi: point.cpi,
        power_w: point.power,
        corrected_cpi: corrected.cpi,
        corrected_power_w: corrected.power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::StreamingSweep;
    use pmt_ml::{train, TrainOptions, TrainingRow};
    use pmt_profiler::{Profiler, ProfilerConfig};
    use pmt_uarch::DesignSpace;
    use pmt_workloads::WorkloadSpec;

    fn profile() -> ApplicationProfile {
        let spec = WorkloadSpec::by_name("astar").unwrap();
        Profiler::new(ProfilerConfig::fast_test()).profile_named("astar", &mut spec.trace(10_000))
    }

    /// Training rows with a given systematic CPI bias over the small grid.
    fn model_with_bias(profile: &ApplicationProfile, bias: f64) -> ResidualModel {
        let rows: Vec<TrainingRow> = DesignSpace::small()
            .enumerate()
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let cpi = 0.8 + 0.05 * i as f64;
                let power = 10.0 + i as f64;
                TrainingRow {
                    workload: profile.name.clone(),
                    machine: p.machine,
                    model_cpi: cpi,
                    sim_cpi: cpi * (1.0 + bias),
                    model_power: power,
                    sim_power: power * (1.0 + bias),
                }
            })
            .collect();
        train(
            &rows,
            std::slice::from_ref(profile),
            &TrainOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn corrects_survivors_without_touching_the_summary() {
        let profile = profile();
        let space = DesignSpace::small();
        let summary = StreamingSweep::new(&profile).top_k(5).run(&space);
        let before = serde_json::to_string(&summary).unwrap();

        let model = model_with_bias(&profile, 0.1);
        let top = corrected_top(&summary, &space, &model, &profile);
        let frontier = corrected_frontier(&summary, &space, &model, &profile);
        assert_eq!(top.len(), summary.top.len());
        assert_eq!(frontier.len(), summary.frontier.len());
        for (c, e) in top.iter().zip(&summary.top) {
            assert_eq!(c.id, e.id);
            assert_eq!(c.cpi.to_bits(), e.item.cpi.to_bits());
            // A systematic +10% bias learned → correction moves upward.
            assert!(c.corrected_cpi > c.cpi);
        }
        // The fold's output is byte-identical with the corrector around.
        assert_eq!(serde_json::to_string(&summary).unwrap(), before);
    }

    #[test]
    fn zero_residual_model_is_bit_exact_passthrough() {
        let profile = profile();
        let space = DesignSpace::small();
        let summary = StreamingSweep::new(&profile).top_k(3).run(&space);
        let model = model_with_bias(&profile, 0.0);
        for c in corrected_top(&summary, &space, &model, &profile) {
            assert_eq!(c.corrected_cpi.to_bits(), c.cpi.to_bits());
            assert_eq!(c.corrected_power_w.to_bits(), c.power_w.to_bits());
        }
    }
}

//! Lazy design spaces: points materialized by index, never all at once.
//!
//! The thesis evaluates 243 configurations, but a one-second analytical
//! model exists to sweep *huge* spaces. Materializing a `Vec<DesignPoint>`
//! caps the space at what fits in memory; [`LazyDesignSpace`] removes the
//! cap by describing a space as `len` + `point_at(index)` — a mixed-radix
//! decode — so a streaming sweep touches one point at a time and a shard
//! is just an index range.
//!
//! Two implementations ship:
//!
//! * [`pmt_uarch::DesignSpace`] — the thesis grid (Table 6.3 and its
//!   subsets),
//! * [`ProductSpace`] — a `product`-style builder for user-defined axes,
//!   so spaces far beyond the thesis grid (wider ROB/MSHR/frequency/cache
//!   sweeps, easily 10⁶+ points) are declared in a few lines.
//!
//! ```
//! use pmt_dse::{LazyDesignSpace, ProductSpace};
//! use pmt_uarch::MachineConfig;
//!
//! // 4 widths × 6 ROBs × 4 MSHR depths × 3 clocks = 288 points, declared
//! // lazily: nothing is materialized until a point is asked for.
//! let space = ProductSpace::new(MachineConfig::nehalem())
//!     .dispatch_widths(&[2, 4, 6, 8])
//!     .rob_sizes(&[32, 64, 128, 192, 256, 384])
//!     .mshr_entries(&[4, 8, 16, 32])
//!     .frequency_ghz(&[2.0, 2.66, 3.2]);
//! assert_eq!(space.len(), 288);
//! let p = space.point_at(287); // the largest configuration
//! assert_eq!(p.machine.core.dispatch_width, 8);
//! assert_eq!(p.machine.mem.mshr_entries, 32);
//! assert_eq!(space.iter_points().nth(287).unwrap().id, 287);
//! ```

use pmt_uarch::{
    l3_latency_for_kb, CacheConfig, DesignPoint, DesignSpace, MachineConfig, OperatingPoint,
};
use std::sync::Arc;

/// How an [`Axis`] edits the machine description for one swept value.
type AxisApply = Arc<dyn Fn(&mut MachineConfig, f64) + Send + Sync>;

/// A design space whose points are materialized on demand by dense
/// index. `len`/`point_at` are the whole contract: iteration, sharding
/// and chunking all derive from them.
///
/// Implementations must make `point_at` a pure function of `index` so a
/// sharded or parallel sweep sees exactly the points a serial sweep
/// does.
pub trait LazyDesignSpace: Sync {
    /// Number of points in the space.
    fn len(&self) -> usize;

    /// Materialize the point at `index` (`0..len()`), with `id == index`.
    fn point_at(&self, index: usize) -> DesignPoint;

    /// Whether the space has no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lazily iterate every point in index order; `nth` is O(1), so
    /// `skip`/`take`/`step_by` shard without materializing.
    ///
    /// (Named `iter_points` rather than `iter` so bringing the trait
    /// into scope never changes what `Vec<DesignPoint>::iter()` means.)
    fn iter_points(&self) -> LazyPoints<'_, Self>
    where
        Self: Sized,
    {
        LazyPoints {
            space: self,
            next: 0,
            end: self.len(),
        }
    }
}

/// The thesis grid is a lazy space (mixed-radix decode via
/// [`DesignSpace::point_at`]).
impl LazyDesignSpace for DesignSpace {
    fn len(&self) -> usize {
        DesignSpace::len(self)
    }

    fn point_at(&self, index: usize) -> DesignPoint {
        DesignSpace::point_at(self, index)
    }
}

/// An explicit point list is the degenerate lazy space (points are
/// cloned out on demand). The clone's `id` is reassigned to the **list
/// position** to honor the trait's `id == index` contract — so frontier
/// and top-K ids from a streamed subset always index back into the list
/// that produced them, even when the points carry ids from some larger
/// original space.
impl LazyDesignSpace for [DesignPoint] {
    fn len(&self) -> usize {
        <[DesignPoint]>::len(self)
    }

    fn point_at(&self, index: usize) -> DesignPoint {
        let mut p = self[index].clone();
        p.id = index;
        p
    }
}

impl LazyDesignSpace for Vec<DesignPoint> {
    fn len(&self) -> usize {
        self.as_slice().len()
    }

    fn point_at(&self, index: usize) -> DesignPoint {
        self.as_slice().point_at(index)
    }
}

/// Lazy iterator over any [`LazyDesignSpace`] (index order, O(1) `nth`,
/// double-ended, exact-size).
#[derive(Clone, Debug)]
pub struct LazyPoints<'a, S: LazyDesignSpace> {
    space: &'a S,
    next: usize,
    end: usize,
}

impl<S: LazyDesignSpace> Iterator for LazyPoints<'_, S> {
    type Item = DesignPoint;

    fn next(&mut self) -> Option<DesignPoint> {
        if self.next >= self.end {
            return None;
        }
        let p = self.space.point_at(self.next);
        self.next += 1;
        Some(p)
    }

    fn nth(&mut self, n: usize) -> Option<DesignPoint> {
        // Clamp to `end` so an overshooting nth/skip can never leave
        // `next > end` (which would make size_hint subtract with
        // overflow).
        self.next = self.next.saturating_add(n).min(self.end);
        self.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.end - self.next;
        (rest, Some(rest))
    }
}

impl<S: LazyDesignSpace> ExactSizeIterator for LazyPoints<'_, S> {}

impl<S: LazyDesignSpace> DoubleEndedIterator for LazyPoints<'_, S> {
    fn next_back(&mut self) -> Option<DesignPoint> {
        if self.next >= self.end {
            return None;
        }
        self.end -= 1;
        Some(self.space.point_at(self.end))
    }
}

/// One swept parameter of a [`ProductSpace`]: a name, the values it
/// takes, and how a value edits the machine description.
#[derive(Clone)]
pub struct Axis {
    /// Axis name, used in generated machine names (`name=value`).
    pub name: String,
    /// The values this axis sweeps.
    pub values: Vec<f64>,
    apply: AxisApply,
}

impl std::fmt::Debug for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Axis")
            .field("name", &self.name)
            .field("values", &self.values)
            .finish_non_exhaustive()
    }
}

/// A full-factorial product of user-defined axes over a base machine —
/// the lazy builder for spaces beyond the thesis grid.
///
/// Points are decoded by mixed-radix index: the first axis added is the
/// most significant digit, the last the least (matching the nesting
/// order of [`DesignSpace::enumerate`]). Each materialized point starts
/// from the base machine and applies the axes **in insertion order**, so
/// an axis may read what earlier axes wrote (the canned
/// [`frequency_ghz`](Self::frequency_ghz) axis relies on this to rescale
/// memory latencies against the clock the base machine had).
#[derive(Clone, Debug)]
pub struct ProductSpace {
    base: MachineConfig,
    axes: Vec<Axis>,
}

impl ProductSpace {
    /// A space over `base` with no axes yet (a single point: the base
    /// machine itself).
    pub fn new(base: MachineConfig) -> ProductSpace {
        ProductSpace {
            base,
            axes: Vec::new(),
        }
    }

    /// Add a user-defined axis: `apply` edits the machine for one swept
    /// value. Values are `f64` so one axis type covers integer knobs
    /// (sizes, depths) and continuous ones (clocks, voltages) alike.
    pub fn axis(
        mut self,
        name: &str,
        values: impl IntoIterator<Item = f64>,
        apply: impl Fn(&mut MachineConfig, f64) + Send + Sync + 'static,
    ) -> ProductSpace {
        let values: Vec<f64> = values.into_iter().collect();
        assert!(!values.is_empty(), "axis `{name}` has no values");
        self.axes.push(Axis {
            name: name.to_string(),
            values,
            apply: Arc::new(apply),
        });
        self
    }

    /// Canned axis: dispatch/commit width.
    pub fn dispatch_widths(self, widths: &[u32]) -> ProductSpace {
        self.axis("w", widths.iter().map(|&w| w as f64), |m, w| {
            m.core = m.core.with_dispatch_width(w as u32);
        })
    }

    /// Canned axis: ROB size, with IQ/LSQ scaled along (thesis Table 6.3
    /// convention).
    pub fn rob_sizes(self, sizes: &[u32]) -> ProductSpace {
        self.axis("rob", sizes.iter().map(|&s| s as f64), |m, s| {
            m.core = m.core.with_rob(s as u32);
        })
    }

    /// Canned axis: L1-I/L1-D capacity in KiB (associativity and
    /// latencies kept from the base machine).
    pub fn l1_kb(self, sizes: &[u32]) -> ProductSpace {
        self.axis("l1", sizes.iter().map(|&s| s as f64), |m, s| {
            m.caches.l1i = CacheConfig::new(s as u32, m.caches.l1i.associativity, 64, 1);
            m.caches.l1d = CacheConfig::new(
                s as u32,
                m.caches.l1d.associativity,
                64,
                m.caches.l1d.latency,
            );
        })
    }

    /// Canned axis: L2 capacity in KiB.
    pub fn l2_kb(self, sizes: &[u32]) -> ProductSpace {
        self.axis("l2", sizes.iter().map(|&s| s as f64), |m, s| {
            m.caches.l2 =
                CacheConfig::new(s as u32, m.caches.l2.associativity, 64, m.caches.l2.latency);
        })
    }

    /// Canned axis: L3 capacity in KiB, with the weak latency-capacity
    /// scaling of the thesis space ([`pmt_uarch::l3_latency_for_kb`] —
    /// shared with [`DesignSpace::point_at`], so the two derivations
    /// cannot drift).
    pub fn l3_kb(self, sizes: &[u32]) -> ProductSpace {
        self.axis("l3", sizes.iter().map(|&s| s as f64), |m, s| {
            let kb = s as u32;
            m.caches.l3 =
                CacheConfig::new(kb, m.caches.l3.associativity, 64, l3_latency_for_kb(kb));
        })
    }

    /// Canned axis: L1-D MSHR depth (bounds memory-level parallelism,
    /// thesis §4.6).
    pub fn mshr_entries(self, entries: &[u32]) -> ProductSpace {
        self.axis("mshr", entries.iter().map(|&e| e as f64), |m, e| {
            m.mem.mshr_entries = e as u32;
        })
    }

    /// Canned axis: core clock in GHz **at the base machine's voltage**.
    /// DRAM nanoseconds are physical, so the memory latencies *in
    /// cycles* rescale with the clock; `vdd` is deliberately left
    /// untouched (an iso-voltage what-if). For a physical
    /// voltage/frequency sweep use
    /// [`operating_points`](Self::operating_points), which moves both
    /// like a real DVFS table.
    pub fn frequency_ghz(self, ghz: &[f64]) -> ProductSpace {
        self.axis("f", ghz.iter().copied(), |m, f| {
            let scale = f / m.core.frequency_ghz;
            m.core.frequency_ghz = f;
            m.mem.dram_latency = ((m.mem.dram_latency as f64) * scale).round().max(1.0) as u32;
            m.mem.bus_transfer_cycles = ((m.mem.bus_transfer_cycles as f64) * scale)
                .round()
                .max(1.0) as u32;
        })
    }

    /// Canned axis: voltage/frequency operating points. Clock, supply
    /// voltage and the memory latencies in cycles all move together,
    /// exactly as [`crate::dvfs::machine_at`] rescales a machine for a
    /// DVFS setting — so high-clock points pay their real
    /// (vdd/V_nom)²-scaled power.
    pub fn operating_points(self, points: &[OperatingPoint]) -> ProductSpace {
        let pairs: Vec<(f64, f64)> = points.iter().map(|p| (p.frequency_ghz, p.vdd)).collect();
        self.axis("f", points.iter().map(|p| p.frequency_ghz), move |m, f| {
            let vdd = pairs
                .iter()
                .find(|(freq, _)| *freq == f)
                .expect("axis value comes from the pair list")
                .1;
            let scale = f / m.core.frequency_ghz;
            m.core.frequency_ghz = f;
            m.core.vdd = vdd;
            m.mem.dram_latency = ((m.mem.dram_latency as f64) * scale).round().max(1.0) as u32;
            m.mem.bus_transfer_cycles = ((m.mem.bus_transfer_cycles as f64) * scale)
                .round()
                .max(1.0) as u32;
        })
    }

    /// The swept axes, in application order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// A 103,680-point demonstration space: the thesis axes widened and
    /// crossed with MSHR depth and a voltage/frequency axis (the Table
    /// 7.2 DVFS points plus a 3.6 GHz / 1.275 V extension of the same
    /// linear V-f curve). This is the space the `pmt explore` examples,
    /// the frontier-at-scale figure and the streaming perf record sweep
    /// — large enough that materializing it would dominate memory, cheap
    /// enough to stream in seconds.
    pub fn frontier_demo() -> ProductSpace {
        let mut vf = pmt_uarch::nehalem_dvfs_points();
        vf.push(OperatingPoint::new(3.6, 1.275));
        ProductSpace::new(MachineConfig::nehalem())
            .dispatch_widths(&[2, 3, 4, 5, 6, 8])
            .rob_sizes(&[32, 48, 64, 96, 128, 192, 256, 384, 512])
            .l1_kb(&[16, 32, 64, 128])
            .l2_kb(&[128, 256, 512, 1024])
            .l3_kb(&[1024, 2048, 4096, 8192, 16384])
            .mshr_entries(&[4, 8, 16, 32])
            .operating_points(&vf)
    }
}

impl LazyDesignSpace for ProductSpace {
    fn len(&self) -> usize {
        // An unchecked `.product()` wraps silently in release builds,
        // which would make sharded chunk math quietly wrong for spaces
        // past usize::MAX points — fail loudly instead.
        self.axes.iter().fold(1usize, |acc, a| {
            acc.checked_mul(a.values.len()).unwrap_or_else(|| {
                let sizes: Vec<String> = self
                    .axes
                    .iter()
                    .map(|a| format!("{}×{}", a.name, a.values.len()))
                    .collect();
                panic!(
                    "design space size overflows usize: axes {}",
                    sizes.join(" · ")
                )
            })
        })
    }

    fn point_at(&self, index: usize) -> DesignPoint {
        assert!(
            index < self.len(),
            "design-point index {index} out of bounds for a {}-point space",
            self.len()
        );
        // Mixed-radix decode: last axis is the least significant digit.
        let mut digits = vec![0usize; self.axes.len()];
        let mut rest = index;
        for (i, axis) in self.axes.iter().enumerate().rev() {
            digits[i] = rest % axis.values.len();
            rest /= axis.values.len();
        }
        let mut machine = self.base.clone();
        let mut name = self.base.name.clone();
        for (axis, &d) in self.axes.iter().zip(&digits) {
            let value = axis.values[d];
            (axis.apply)(&mut machine, value);
            // Integer-valued knobs print without a trailing ".0".
            if value.fract() == 0.0 {
                name.push_str(&format!("-{}{}", axis.name, value as i64));
            } else {
                name.push_str(&format!("-{}{}", axis.name, value));
            }
        }
        machine.name = name;
        let coords = (
            machine.core.dispatch_width,
            machine.core.rob_size,
            machine.caches.l1d.size_kb,
            machine.caches.l2.size_kb,
            machine.caches.l3.size_kb,
        );
        DesignPoint {
            id: index,
            machine,
            coords,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thesis_space_is_lazy_and_matches_enumerate() {
        let space = DesignSpace::small();
        let eager = space.enumerate();
        let lazy: Vec<DesignPoint> = LazyDesignSpace::iter_points(&space).collect();
        assert_eq!(lazy, eager);
    }

    #[test]
    fn slice_of_points_is_a_lazy_space() {
        let points = DesignSpace::small().enumerate();
        let slice: &[DesignPoint] = &points;
        assert_eq!(LazyDesignSpace::len(slice), 32);
        assert_eq!(slice.point_at(7), points[7]);
        assert_eq!(LazyDesignSpace::len(&points), 32);

        // A *non-dense* list (ids from the original space) still honors
        // the `id == index` contract: ids are reassigned to the list
        // position, so streamed frontier/top-K ids index this list.
        let subset: Vec<DesignPoint> = points.iter().step_by(5).cloned().collect();
        assert_eq!(subset[1].id, 5); // original id survives in the list...
        let p = subset.point_at(1);
        assert_eq!(p.id, 1); // ...but point_at re-bases it
        assert_eq!(p.machine, subset[1].machine);
    }

    #[test]
    #[should_panic(expected = "design space size overflows usize")]
    fn product_space_len_overflow_panics_instead_of_wrapping() {
        // 256^8 = 2^64: one past usize::MAX. Before the checked_mul fix
        // this wrapped to 0 in release builds and the sweep silently
        // evaluated nothing.
        let mut space = ProductSpace::new(MachineConfig::nehalem());
        for _ in 0..8 {
            space = space.axis("f", (0..256).map(f64::from), |_, _| {});
        }
        let _ = LazyDesignSpace::len(&space);
    }

    #[test]
    fn product_space_decodes_mixed_radix_in_insertion_order() {
        let space = ProductSpace::new(MachineConfig::nehalem())
            .dispatch_widths(&[2, 4])
            .rob_sizes(&[64, 128, 256]);
        assert_eq!(space.len(), 6);
        assert_eq!(space.axes().len(), 2);
        // First axis most significant: ids 0..3 are width 2.
        let p0 = space.point_at(0);
        assert_eq!(p0.machine.core.dispatch_width, 2);
        assert_eq!(p0.machine.core.rob_size, 64);
        let p5 = space.point_at(5);
        assert_eq!(p5.machine.core.dispatch_width, 4);
        assert_eq!(p5.machine.core.rob_size, 256);
        assert_eq!(p5.id, 5);
        // Names are distinct and readable.
        assert_ne!(p0.machine.name, p5.machine.name);
        assert!(p5.machine.name.contains("w4"));
        assert!(p5.machine.name.contains("rob256"));
    }

    #[test]
    fn overshooting_nth_clamps_and_keeps_the_iterator_usable() {
        let space = DesignSpace::small();
        let mut it = space.iter_points();
        assert!(it.nth(1_000).is_none());
        assert_eq!(it.len(), 0);
        assert!(it.next().is_none());
        // A ProductSpace and a thesis L3 axis derive the same machine.
        let product = ProductSpace::new(MachineConfig::nehalem()).l3_kb(&[2048, 4096, 8192]);
        for (i, kb) in [2048u32, 4096, 8192].iter().enumerate() {
            let lat = product.point_at(i).machine.caches.l3.latency;
            assert_eq!(lat, l3_latency_for_kb(*kb));
        }
    }

    #[test]
    fn frequency_axis_rescales_memory_latency() {
        let space = ProductSpace::new(MachineConfig::nehalem()).frequency_ghz(&[1.33, 2.66, 5.32]);
        let slow = space.point_at(0);
        let base = space.point_at(1);
        let fast = space.point_at(2);
        assert_eq!(base.machine.mem.dram_latency, 200);
        assert_eq!(slow.machine.mem.dram_latency, 100);
        assert_eq!(fast.machine.mem.dram_latency, 400);
        assert!(fast.machine.name.contains("f5.32"));
        // The plain frequency axis is iso-voltage by contract.
        assert_eq!(fast.machine.core.vdd, MachineConfig::nehalem().core.vdd);
    }

    #[test]
    fn operating_point_axis_moves_voltage_with_frequency() {
        let space = ProductSpace::new(MachineConfig::nehalem())
            .operating_points(&pmt_uarch::nehalem_dvfs_points());
        assert_eq!(space.len(), 5);
        let slow = space.point_at(0);
        let fast = space.point_at(4);
        assert!((slow.machine.core.vdd - 0.90).abs() < 1e-12);
        assert!((fast.machine.core.vdd - 1.20).abs() < 1e-12);
        // Memory latency rescales exactly like dvfs::machine_at.
        let expect = crate::dvfs::machine_at(
            &MachineConfig::nehalem(),
            pmt_uarch::nehalem_dvfs_points()[4],
        );
        assert_eq!(fast.machine.mem.dram_latency, expect.mem.dram_latency);
        assert_eq!(
            fast.machine.mem.bus_transfer_cycles,
            expect.mem.bus_transfer_cycles
        );
    }

    #[test]
    fn frontier_demo_is_at_least_100k_points() {
        let space = ProductSpace::frontier_demo();
        assert!(space.len() >= 100_000, "demo space {} points", space.len());
        // Spot-check both ends decode.
        assert_eq!(space.point_at(0).id, 0);
        assert_eq!(space.point_at(space.len() - 1).id, space.len() - 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn product_point_past_the_end_panics() {
        ProductSpace::new(MachineConfig::nehalem())
            .dispatch_widths(&[2])
            .point_at(1);
    }
}

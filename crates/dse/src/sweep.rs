//! Parallel design-space sweeps (thesis §6.2.4, §7.4).

use pmt_core::{IntervalModel, ModelConfig};
use pmt_power::PowerModel;
use pmt_profiler::ApplicationProfile;
use pmt_sim::{OooSimulator, SimConfig};
use pmt_uarch::DesignPoint;
use pmt_workloads::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// One (design, workload) evaluation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PointOutcome {
    /// Design point id.
    pub design_id: usize,
    /// Workload name.
    pub workload: String,
    /// Model-predicted CPI.
    pub model_cpi: f64,
    /// Model-predicted total power (W).
    pub model_power: f64,
    /// Model-predicted execution seconds.
    pub model_seconds: f64,
    /// Simulator CPI (None if the sweep was model-only).
    pub sim_cpi: Option<f64>,
    /// Simulator power (W).
    pub sim_power: Option<f64>,
    /// Simulator execution seconds.
    pub sim_seconds: Option<f64>,
}

impl PointOutcome {
    /// Model (delay, power) coordinates for Pareto analysis.
    pub fn model_coords(&self) -> (f64, f64) {
        (self.model_seconds, self.model_power)
    }

    /// Simulator (delay, power) coordinates, if simulated.
    pub fn sim_coords(&self) -> Option<(f64, f64)> {
        Some((self.sim_seconds?, self.sim_power?))
    }

    /// Relative CPI error, if simulated.
    pub fn cpi_error(&self) -> Option<f64> {
        let s = self.sim_cpi?;
        Some((self.model_cpi - s) / s)
    }

    /// Relative power error, if simulated.
    pub fn power_error(&self) -> Option<f64> {
        let s = self.sim_power?;
        Some((self.model_power - s) / s)
    }
}

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Model configuration (entropy model etc.).
    pub model: ModelConfig,
    /// Also run the cycle-level simulator for ground truth.
    pub with_simulation: bool,
    /// Instructions per simulation (ignored for the model, which uses the
    /// profile).
    pub sim_instructions: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            model: ModelConfig::default(),
            with_simulation: false,
            sim_instructions: 200_000,
        }
    }
}

/// A design-space × workload evaluation.
#[derive(Clone, Debug, Default)]
pub struct SpaceEvaluation {
    /// All outcomes, grouped by workload-major order.
    pub outcomes: Vec<PointOutcome>,
}

impl SpaceEvaluation {
    /// Evaluate the model for one profiled workload over all design
    /// points; optionally simulate for truth (parallel over points).
    pub fn run(
        points: &[DesignPoint],
        profile: &ApplicationProfile,
        spec: Option<&WorkloadSpec>,
        cfg: &SweepConfig,
    ) -> SpaceEvaluation {
        assert!(
            !cfg.with_simulation || spec.is_some(),
            "simulation needs the workload spec"
        );
        let outcomes = parallel_map_ref(points, |point| {
            Self::evaluate_point(point, profile, spec, cfg)
        });
        SpaceEvaluation { outcomes }
    }

    fn evaluate_point(
        point: &DesignPoint,
        profile: &ApplicationProfile,
        spec: Option<&WorkloadSpec>,
        cfg: &SweepConfig,
    ) -> PointOutcome {
        let machine = &point.machine;
        let model = IntervalModel::with_config(machine, cfg.model.clone());
        let prediction = model.predict(profile);
        let power_model = PowerModel::new(machine);
        let model_power = power_model.power(&prediction.activity).total();
        let model_seconds = prediction.seconds_at(machine.core.frequency_ghz);

        let (sim_cpi, sim_power, sim_seconds) = if cfg.with_simulation {
            let spec = spec.expect("checked in run()");
            let r = OooSimulator::new(SimConfig::new(machine.clone()))
                .run(&mut spec.trace(cfg.sim_instructions));
            let p = power_model.power(&r.activity).total();
            (
                Some(r.cpi()),
                Some(p),
                Some(r.seconds_at(machine.core.frequency_ghz)),
            )
        } else {
            (None, None, None)
        };

        PointOutcome {
            design_id: point.id,
            workload: profile.name.clone(),
            model_cpi: prediction.cpi(),
            model_power,
            model_seconds,
            sim_cpi,
            sim_power,
            sim_seconds,
        }
    }

    /// Model (delay, power) coordinates in design-id order.
    pub fn model_points(&self) -> Vec<(f64, f64)> {
        self.outcomes.iter().map(|o| o.model_coords()).collect()
    }

    /// Simulator coordinates (empty if not simulated).
    pub fn sim_points(&self) -> Vec<(f64, f64)> {
        self.outcomes.iter().filter_map(|o| o.sim_coords()).collect()
    }
}

/// Order-preserving parallel map over a slice.
pub fn parallel_map_ref<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads: usize = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results = std::sync::Mutex::new(Vec::<(usize, R)>::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..threads.min(items.len().max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                results.lock().unwrap().push((i, r));
            });
        }
    });
    let mut out = results.into_inner().unwrap();
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmt_profiler::{Profiler, ProfilerConfig};
    use pmt_uarch::DesignSpace;

    fn profile() -> ApplicationProfile {
        let spec = WorkloadSpec::by_name("astar").unwrap();
        Profiler::new(ProfilerConfig::fast_test()).profile_named("astar", &mut spec.trace(30_000))
    }

    #[test]
    fn model_only_sweep_covers_space() {
        let points = DesignSpace::small().enumerate();
        let eval = SpaceEvaluation::run(&points, &profile(), None, &SweepConfig::default());
        assert_eq!(eval.outcomes.len(), 32);
        for o in &eval.outcomes {
            assert!(o.model_cpi > 0.0);
            assert!(o.model_power > 0.0);
            assert!(o.sim_cpi.is_none());
        }
    }

    #[test]
    fn bigger_machines_predictably_cost_power() {
        let points = DesignSpace::small().enumerate();
        let eval = SpaceEvaluation::run(&points, &profile(), None, &SweepConfig::default());
        // The smallest and largest configurations by resources.
        let small = &eval.outcomes[0];
        let big = eval.outcomes.last().unwrap();
        assert!(big.model_power > small.model_power);
    }

    #[test]
    fn simulated_sweep_fills_truth() {
        let spec = WorkloadSpec::by_name("astar").unwrap();
        let points = DesignSpace::small().enumerate()[..4].to_vec();
        let cfg = SweepConfig {
            with_simulation: true,
            sim_instructions: 10_000,
            ..Default::default()
        };
        let eval = SpaceEvaluation::run(&points, &profile(), Some(&spec), &cfg);
        for o in &eval.outcomes {
            assert!(o.sim_cpi.unwrap() > 0.0);
            assert!(o.cpi_error().is_some());
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map_ref(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }
}

//! Parallel design-space sweeps (thesis §6.2.4, §7.4).

use pmt_core::{ModelConfig, PreparedProfile};
use pmt_power::PowerModel;
use pmt_profiler::ApplicationProfile;
use pmt_sim::{CacheKey, OooSimulator, SimCache, SimConfig, SimResult};
use pmt_uarch::{DesignPoint, DesignSpace, MachineConfig};
use pmt_workloads::WorkloadSpec;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One (design, workload) evaluation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PointOutcome {
    /// Design point id.
    pub design_id: usize,
    /// Workload name.
    pub workload: String,
    /// Model-predicted CPI.
    pub model_cpi: f64,
    /// Model-predicted total power (W).
    pub model_power: f64,
    /// Model-predicted execution seconds.
    pub model_seconds: f64,
    /// Simulator CPI (None if the sweep was model-only).
    pub sim_cpi: Option<f64>,
    /// Simulator power (W).
    pub sim_power: Option<f64>,
    /// Simulator execution seconds.
    pub sim_seconds: Option<f64>,
}

impl PointOutcome {
    /// Model (delay, power) coordinates for Pareto analysis.
    pub fn model_coords(&self) -> (f64, f64) {
        (self.model_seconds, self.model_power)
    }

    /// Simulator (delay, power) coordinates, if simulated.
    pub fn sim_coords(&self) -> Option<(f64, f64)> {
        Some((self.sim_seconds?, self.sim_power?))
    }

    /// **Signed** relative CPI error, if simulated:
    /// `(model − sim) / sim`. Positive means the model over-predicts.
    ///
    /// This is the error convention everywhere in the workspace (see
    /// [`pmt_core::Prediction::cpi_error_vs`]): errors are signed so that
    /// systematic bias survives averaging; use
    /// [`abs_cpi_error`](Self::abs_cpi_error) when only the magnitude
    /// matters.
    pub fn cpi_error(&self) -> Option<f64> {
        let s = self.sim_cpi?;
        Some((self.model_cpi - s) / s)
    }

    /// Magnitude of [`cpi_error`](Self::cpi_error).
    pub fn abs_cpi_error(&self) -> Option<f64> {
        self.cpi_error().map(f64::abs)
    }

    /// **Signed** relative IPC error, if simulated: `(model − sim)/sim`
    /// in IPC terms, i.e. `sim_cpi/model_cpi − 1`.
    pub fn ipc_error(&self) -> Option<f64> {
        let s = self.sim_cpi?;
        if self.model_cpi == 0.0 {
            return None;
        }
        Some(s / self.model_cpi - 1.0)
    }

    /// Magnitude of [`ipc_error`](Self::ipc_error).
    pub fn abs_ipc_error(&self) -> Option<f64> {
        self.ipc_error().map(f64::abs)
    }

    /// **Signed** relative power error, if simulated:
    /// `(model − sim) / sim`. Positive means the model over-predicts.
    pub fn power_error(&self) -> Option<f64> {
        let s = self.sim_power?;
        Some((self.model_power - s) / s)
    }

    /// Magnitude of [`power_error`](Self::power_error).
    pub fn abs_power_error(&self) -> Option<f64> {
        self.power_error().map(f64::abs)
    }
}

/// The content key memoizing one reference simulation: the full workload
/// spec, the full machine configuration and the instruction budget, each
/// rendered to canonical JSON. Any field change — a cache size, the ROB
/// depth, the workload seed, the budget — changes the key.
pub fn sim_cache_key(
    spec: &WorkloadSpec,
    machine: &MachineConfig,
    sim_instructions: u64,
) -> CacheKey {
    CacheKey::of_parts(&[
        &serde_json::to_string(spec).expect("workload specs serialize"),
        &serde_json::to_string(machine).expect("machine configs serialize"),
        &sim_instructions.to_string(),
    ])
}

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Model configuration (entropy model etc.).
    pub model: ModelConfig,
    /// Also run the cycle-level simulator for ground truth.
    pub with_simulation: bool,
    /// Instructions per simulation (ignored for the model, which uses the
    /// profile).
    pub sim_instructions: u64,
    /// Optional shared memoization cache for simulation results, keyed by
    /// [`sim_cache_key`]. Repeated sweeps over overlapping (workload,
    /// point, budget) grids — e.g. successive `pmt_validate` runs — skip
    /// already-simulated points; the simulator is deterministic, so cached
    /// results are bit-identical to fresh ones.
    pub sim_cache: Option<Arc<SimCache>>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            model: ModelConfig::default(),
            with_simulation: false,
            sim_instructions: 200_000,
            sim_cache: None,
        }
    }
}

/// A design-space × workload evaluation.
#[derive(Clone, Debug, Default)]
pub struct SpaceEvaluation {
    /// All outcomes, grouped by workload-major order.
    pub outcomes: Vec<PointOutcome>,
}

impl SpaceEvaluation {
    /// Evaluate the model for one profiled workload over all design
    /// points; optionally simulate for truth.
    ///
    /// Profile once, **prepare once**, predict many: the machine-independent
    /// StatStack fits are compiled once ([`PreparedProfile`]), shared
    /// read-only across the rayon workers, and the design points pay only
    /// for the machine-dependent queries — answered per chunk through the
    /// batched kernels ([`pmt_core::BatchPredictor`]), bit-identical to
    /// the one-point [`pmt_core::IntervalModel::predict_summary`]. Results
    /// come back in design-point order, so a parallel sweep is
    /// **bit-identical** to [`run_serial`](Self::run_serial).
    pub fn run(
        points: &[DesignPoint],
        profile: &ApplicationProfile,
        spec: Option<&WorkloadSpec>,
        cfg: &SweepConfig,
    ) -> SpaceEvaluation {
        Self::evaluate(points, profile, spec, cfg, true)
    }

    /// The sequential reference path: identical arithmetic to
    /// [`run`](Self::run),
    /// one point at a time. Kept public so benchmarks and equivalence
    /// tests can measure the parallel speedup against it.
    pub fn run_serial(
        points: &[DesignPoint],
        profile: &ApplicationProfile,
        spec: Option<&WorkloadSpec>,
        cfg: &SweepConfig,
    ) -> SpaceEvaluation {
        Self::evaluate(points, profile, spec, cfg, false)
    }

    /// The single evaluation core behind [`run`](Self::run) and
    /// [`run_serial`](Self::run_serial): one prepared profile, the model
    /// half batched per chunk, the simulation half per point — the
    /// serial and parallel paths differ *only* in the iterators driving
    /// both halves, so their equivalence is structural rather than
    /// maintained by hand.
    fn evaluate(
        points: &[DesignPoint],
        profile: &ApplicationProfile,
        spec: Option<&WorkloadSpec>,
        cfg: &SweepConfig,
        parallel: bool,
    ) -> SpaceEvaluation {
        assert!(
            !cfg.with_simulation || spec.is_some(),
            "simulation needs the workload spec"
        );
        let prepared = PreparedProfile::new(profile);
        let model = Self::predict_model_points(points, &prepared, cfg, parallel);
        let eval = |i: usize| Self::finish_point(&points[i], model[i], &prepared, spec, cfg);
        let outcomes = if parallel {
            (0..points.len()).into_par_iter().map(eval).collect()
        } else {
            (0..points.len()).map(eval).collect()
        };
        SpaceEvaluation { outcomes }
    }

    /// The model half of a sweep: every point's (cpi, seconds, power),
    /// in point order, evaluated through the batched kernels
    /// ([`crate::streaming::evaluate_stream_points_batched`] — the *same
    /// function* the streaming engine folds, so a streamed sweep is
    /// bit-identical to a materialized one by construction). Chunks run
    /// in parallel when asked; order-preserving either way.
    fn predict_model_points(
        points: &[DesignPoint],
        prepared: &PreparedProfile<'_>,
        cfg: &SweepConfig,
        parallel: bool,
    ) -> Vec<crate::streaming::StreamPoint> {
        let chunks: Vec<&[DesignPoint]> = points.chunks(crate::streaming::DEFAULT_CHUNK).collect();
        let eval = |c: &&[DesignPoint]| {
            crate::streaming::evaluate_stream_points_batched(c, prepared, &cfg.model)
        };
        let per_chunk: Vec<Vec<crate::streaming::StreamPoint>> = if parallel {
            chunks.par_iter().map(eval).collect()
        } else {
            chunks.iter().map(eval).collect()
        };
        per_chunk.into_iter().flatten().collect()
    }

    /// Finish one design point: attach the precomputed model prediction
    /// and (optionally) the memoized reference simulation.
    fn finish_point(
        point: &DesignPoint,
        p: crate::streaming::StreamPoint,
        prepared: &PreparedProfile<'_>,
        spec: Option<&WorkloadSpec>,
        cfg: &SweepConfig,
    ) -> PointOutcome {
        let machine = &point.machine;
        let (sim_cpi, sim_power, sim_seconds) = if cfg.with_simulation {
            let spec = spec.expect("checked in run()");
            let simulate = || {
                OooSimulator::new(SimConfig::new(machine.clone()))
                    .run(&mut spec.trace(cfg.sim_instructions))
            };
            let r: Arc<SimResult> = match &cfg.sim_cache {
                Some(cache) => {
                    let key = sim_cache_key(spec, machine, cfg.sim_instructions);
                    cache.get_or_run(key, simulate)
                }
                None => Arc::new(simulate()),
            };
            let sim_power = PowerModel::new(machine).power(&r.activity).total();
            (
                Some(r.cpi()),
                Some(sim_power),
                Some(r.seconds_at(machine.core.frequency_ghz)),
            )
        } else {
            (None, None, None)
        };

        PointOutcome {
            design_id: point.id,
            workload: prepared.profile().name.clone(),
            model_cpi: p.cpi,
            model_power: p.power,
            model_seconds: p.seconds,
            sim_cpi,
            sim_power,
            sim_seconds,
        }
    }

    /// Model (delay, power) coordinates in design-id order.
    pub fn model_points(&self) -> Vec<(f64, f64)> {
        self.outcomes.iter().map(|o| o.model_coords()).collect()
    }

    /// Simulator coordinates (empty if not simulated).
    pub fn sim_points(&self) -> Vec<(f64, f64)> {
        self.outcomes
            .iter()
            .filter_map(|o| o.sim_coords())
            .collect()
    }
}

/// A batch design-space sweep: many profiled workloads × one design space,
/// evaluated as a single rayon-parallel job.
///
/// This is the facade-level entry point for the paper's headline workflow
/// (profile once per workload, then predict the whole space "in seconds"):
///
/// ```
/// use pmt_dse::SweepBuilder;
/// use pmt_profiler::{Profiler, ProfilerConfig};
/// use pmt_uarch::DesignSpace;
/// use pmt_workloads::WorkloadSpec;
///
/// let spec = WorkloadSpec::by_name("astar").unwrap();
/// let profile =
///     Profiler::new(ProfilerConfig::fast_test()).profile_named("astar", &mut spec.trace(20_000));
/// let batch = SweepBuilder::new()
///     .space(DesignSpace::small())
///     .profile(&profile)
///     .run();
/// assert_eq!(batch.evaluations.len(), 1);
/// assert_eq!(batch.evaluations[0].outcomes.len(), 32);
/// ```
#[derive(Default)]
pub struct SweepBuilder<'a> {
    points: Vec<DesignPoint>,
    /// Which setter provided `points` — [`space`](Self::space) and
    /// [`points`](Self::points) are mutually exclusive, and mixing them
    /// is a hard error rather than a silent last-call-wins.
    points_source: Option<&'static str>,
    jobs: Vec<(&'a ApplicationProfile, Option<&'a WorkloadSpec>)>,
    config: SweepConfig,
    serial: bool,
}

impl<'a> SweepBuilder<'a> {
    /// An empty sweep over no points and no workloads.
    pub fn new() -> SweepBuilder<'a> {
        SweepBuilder::default()
    }

    fn set_points(&mut self, source: &'static str, points: Vec<DesignPoint>) {
        if let Some(prev) = self.points_source {
            if prev != source {
                panic!(
                    "SweepBuilder::{source}(...) conflicts with the earlier \
                     ::{prev}(...) call: a sweep takes its points from either \
                     a DesignSpace or an explicit list, never both"
                );
            }
        }
        self.points_source = Some(source);
        self.points = points;
    }

    /// Sweep every point of `space`.
    ///
    /// Mutually exclusive with [`points`](Self::points): calling both on
    /// one builder panics (repeating the *same* setter replaces the
    /// previous value). A silent last-call-wins here used to discard a
    /// carefully constructed point list without a trace.
    pub fn space(mut self, space: DesignSpace) -> Self {
        self.set_points("space", space.enumerate());
        self
    }

    /// Sweep an explicit list of design points.
    ///
    /// Mutually exclusive with [`space`](Self::space) — see there.
    pub fn points(mut self, points: Vec<DesignPoint>) -> Self {
        self.set_points("points", points);
        self
    }

    /// Add a profiled workload (model-only evaluation).
    pub fn profile(mut self, profile: &'a ApplicationProfile) -> Self {
        self.jobs.push((profile, None));
        self
    }

    /// Add a profiled workload together with its generator spec so the
    /// sweep can also run the cycle-level simulator for ground truth.
    pub fn profile_with_spec(
        mut self,
        profile: &'a ApplicationProfile,
        spec: &'a WorkloadSpec,
    ) -> Self {
        self.jobs.push((profile, Some(spec)));
        self
    }

    /// Replace the sweep configuration.
    pub fn config(mut self, config: SweepConfig) -> Self {
        self.config = config;
        self
    }

    /// Also simulate every point (requires specs via
    /// [`profile_with_spec`](Self::profile_with_spec)).
    pub fn with_simulation(mut self, sim_instructions: u64) -> Self {
        self.config.with_simulation = true;
        self.config.sim_instructions = sim_instructions;
        self
    }

    /// Memoize simulation results in `cache` (shared; see
    /// [`SweepConfig::sim_cache`]).
    pub fn sim_cache(mut self, cache: Arc<SimCache>) -> Self {
        self.config.sim_cache = Some(cache);
        self
    }

    /// Force the sequential path (for measurement and debugging).
    pub fn serial(mut self) -> Self {
        self.serial = true;
        self
    }

    /// Evaluate all (workload × design point) pairs.
    ///
    /// Each workload is **prepared once** ([`PreparedProfile`]) and shared
    /// read-only across the whole grid. The model half runs through the
    /// batched kernels per (workload, chunk); the finishing half runs the
    /// identical flat (job, point) grid through the identical per-pair
    /// closure. The serial and parallel paths differ only in the driving
    /// iterators, so a parallel batch is structurally bit-identical to a
    /// serial one; outcomes are regrouped per workload in input order.
    pub fn run(&self) -> BatchEvaluation {
        assert!(
            !self.config.with_simulation || self.jobs.iter().all(|(_, s)| s.is_some()),
            "simulation sweeps need every workload added via profile_with_spec"
        );
        let n_points = self.points.len();
        // The machine-independent compilation, hoisted out of the grid:
        // one preparation per workload, not one per (workload, point) —
        // rayon-parallel (order-preserving collect) since each workload's
        // fits are independent; the `serial` flag only pins the point
        // evaluation order, which preparation does not touch.
        let prepared: Vec<PreparedProfile<'_>> = self
            .jobs
            .par_iter()
            .map(|(profile, _)| PreparedProfile::new(profile))
            .collect();
        // The batched model half, one prediction list per workload (the
        // inner call parallelizes over chunks unless `serial`).
        let model: Vec<Vec<crate::streaming::StreamPoint>> = prepared
            .iter()
            .map(|prep| {
                SpaceEvaluation::predict_model_points(
                    &self.points,
                    prep,
                    &self.config,
                    !self.serial,
                )
            })
            .collect();
        let grid: Vec<(usize, usize)> = (0..self.jobs.len())
            .flat_map(|j| (0..n_points).map(move |p| (j, p)))
            .collect();
        let eval = |&(j, p): &(usize, usize)| {
            let (_, spec) = self.jobs[j];
            SpaceEvaluation::finish_point(
                &self.points[p],
                model[j][p],
                &prepared[j],
                spec,
                &self.config,
            )
        };
        let mut outcomes: Vec<PointOutcome> = if self.serial {
            grid.iter().map(eval).collect()
        } else {
            grid.par_iter().map(eval).collect()
        };
        let mut evals = Vec::with_capacity(self.jobs.len());
        for _ in 0..self.jobs.len() {
            let rest = outcomes.split_off(n_points.min(outcomes.len()));
            evals.push(SpaceEvaluation { outcomes });
            outcomes = rest;
        }
        BatchEvaluation {
            workloads: self.jobs.iter().map(|(p, _)| p.name.clone()).collect(),
            evaluations: evals,
        }
    }
}

/// The result of a [`SweepBuilder`] run: one [`SpaceEvaluation`] per added
/// workload, in insertion order.
#[derive(Clone, Debug, Default)]
pub struct BatchEvaluation {
    /// Workload names, parallel to `evaluations` (recorded at build time so
    /// lookups work even for empty point sets).
    pub workloads: Vec<String>,
    /// Per-workload space evaluations.
    pub evaluations: Vec<SpaceEvaluation>,
}

impl BatchEvaluation {
    /// The evaluation for the first workload added as `workload`.
    pub fn for_workload(&self, workload: &str) -> Option<&SpaceEvaluation> {
        self.workloads
            .iter()
            .position(|w| w == workload)
            .map(|i| &self.evaluations[i])
    }

    /// All outcomes across workloads, workload-major.
    pub fn outcomes(&self) -> impl Iterator<Item = &PointOutcome> {
        self.evaluations.iter().flat_map(|e| e.outcomes.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmt_profiler::{Profiler, ProfilerConfig};
    use pmt_uarch::DesignSpace;

    fn profile() -> ApplicationProfile {
        let spec = WorkloadSpec::by_name("astar").unwrap();
        Profiler::new(ProfilerConfig::fast_test()).profile_named("astar", &mut spec.trace(30_000))
    }

    #[test]
    fn model_only_sweep_covers_space() {
        let points = DesignSpace::small().enumerate();
        let eval = SpaceEvaluation::run(&points, &profile(), None, &SweepConfig::default());
        assert_eq!(eval.outcomes.len(), 32);
        for o in &eval.outcomes {
            assert!(o.model_cpi > 0.0);
            assert!(o.model_power > 0.0);
            assert!(o.sim_cpi.is_none());
        }
    }

    #[test]
    fn bigger_machines_predictably_cost_power() {
        let points = DesignSpace::small().enumerate();
        let eval = SpaceEvaluation::run(&points, &profile(), None, &SweepConfig::default());
        // The smallest and largest configurations by resources.
        let small = &eval.outcomes[0];
        let big = eval.outcomes.last().unwrap();
        assert!(big.model_power > small.model_power);
    }

    #[test]
    fn simulated_sweep_fills_truth() {
        let spec = WorkloadSpec::by_name("astar").unwrap();
        let points = DesignSpace::small().enumerate()[..4].to_vec();
        let cfg = SweepConfig {
            with_simulation: true,
            sim_instructions: 10_000,
            ..Default::default()
        };
        let eval = SpaceEvaluation::run(&points, &profile(), Some(&spec), &cfg);
        for o in &eval.outcomes {
            assert!(o.sim_cpi.unwrap() > 0.0);
            assert!(o.cpi_error().is_some());
        }
    }

    /// The tentpole guarantee: a rayon-parallel sweep returns exactly the
    /// bytes the serial sweep does, in the same order.
    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let points = DesignSpace::small().enumerate();
        let profile = profile();
        let cfg = SweepConfig::default();
        let par = SpaceEvaluation::run(&points, &profile, None, &cfg);
        let ser = SpaceEvaluation::run_serial(&points, &profile, None, &cfg);
        assert_eq!(par.outcomes.len(), ser.outcomes.len());
        for (p, s) in par.outcomes.iter().zip(&ser.outcomes) {
            assert_eq!(p.design_id, s.design_id);
            assert_eq!(p.workload, s.workload);
            assert_eq!(p.model_cpi.to_bits(), s.model_cpi.to_bits());
            assert_eq!(p.model_power.to_bits(), s.model_power.to_bits());
            assert_eq!(p.model_seconds.to_bits(), s.model_seconds.to_bits());
        }
    }

    /// The workspace error convention: signed relative errors, magnitude
    /// via the `abs_*` helpers, zero for a perfect model.
    #[test]
    fn error_helpers_are_signed_with_abs_variants() {
        let mut o = PointOutcome {
            design_id: 0,
            workload: "w".into(),
            model_cpi: 1.2,
            model_power: 8.0,
            model_seconds: 1.0,
            sim_cpi: Some(1.0),
            sim_power: Some(10.0),
            sim_seconds: Some(1.0),
        };
        // Over-predicted CPI: positive error; under-predicted power:
        // negative error — but both abs_* helpers are non-negative.
        assert!((o.cpi_error().unwrap() - 0.2).abs() < 1e-12);
        assert!((o.power_error().unwrap() + 0.2).abs() < 1e-12);
        assert!((o.abs_cpi_error().unwrap() - 0.2).abs() < 1e-12);
        assert!((o.abs_power_error().unwrap() - 0.2).abs() < 1e-12);
        // IPC error has the opposite sign of the CPI error.
        assert!(o.ipc_error().unwrap() < 0.0);
        assert!((o.ipc_error().unwrap() + 1.0 / 6.0).abs() < 1e-12);

        // A perfect model has exactly zero error on every metric.
        o.model_cpi = 1.0;
        o.model_power = 10.0;
        assert_eq!(o.cpi_error(), Some(0.0));
        assert_eq!(o.ipc_error(), Some(0.0));
        assert_eq!(o.power_error(), Some(0.0));

        // Model-only outcomes have no error to report.
        o.sim_cpi = None;
        o.sim_power = None;
        assert_eq!(o.cpi_error(), None);
        assert_eq!(o.abs_cpi_error(), None);
        assert_eq!(o.ipc_error(), None);
        assert_eq!(o.power_error(), None);
        assert_eq!(o.abs_power_error(), None);
    }

    /// Every machine knob the design space sweeps, the workload identity
    /// and the budget must all feed the memoization key.
    #[test]
    fn cache_key_is_sensitive_to_every_input() {
        let spec = WorkloadSpec::by_name("astar").unwrap();
        let base = DesignSpace::small().enumerate()[0].clone();
        let mut keys = vec![sim_cache_key(&spec, &base.machine, 10_000)];

        // Budget.
        keys.push(sim_cache_key(&spec, &base.machine, 20_000));
        // Workload identity (a different seed alone must re-simulate).
        let mut reseeded = spec.clone();
        reseeded.seed ^= 1;
        keys.push(sim_cache_key(&reseeded, &base.machine, 10_000));
        // Each swept DesignPoint coordinate.
        for p in DesignSpace::small().enumerate().iter().skip(1) {
            keys.push(sim_cache_key(&spec, &p.machine, 10_000));
        }

        let mut unique: Vec<u64> = keys.iter().map(|k| k.0).collect();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), keys.len(), "cache key collision");
    }

    /// A cached simulated sweep is bit-identical to an uncached one, and a
    /// second run over the same grid performs zero new simulations.
    #[test]
    fn cached_sweep_matches_uncached_and_warm_run_is_free() {
        let spec = WorkloadSpec::by_name("astar").unwrap();
        let points = DesignSpace::small().enumerate()[..4].to_vec();
        let profile = profile();
        let cold_cfg = SweepConfig {
            with_simulation: true,
            sim_instructions: 5_000,
            ..Default::default()
        };
        let uncached = SpaceEvaluation::run_serial(&points, &profile, Some(&spec), &cold_cfg);

        let cache = SimCache::shared();
        let cached_cfg = SweepConfig {
            sim_cache: Some(cache.clone()),
            ..cold_cfg
        };
        let cold = SpaceEvaluation::run(&points, &profile, Some(&spec), &cached_cfg);
        assert_eq!(cache.stats().misses, points.len() as u64);
        let warm = SpaceEvaluation::run(&points, &profile, Some(&spec), &cached_cfg);
        assert_eq!(
            cache.stats().misses,
            points.len() as u64,
            "warm run re-simulated"
        );
        assert_eq!(cache.stats().hits, points.len() as u64);

        for ((u, c), w) in uncached
            .outcomes
            .iter()
            .zip(&cold.outcomes)
            .zip(&warm.outcomes)
        {
            assert_eq!(u.sim_cpi.unwrap().to_bits(), c.sim_cpi.unwrap().to_bits());
            assert_eq!(c.sim_cpi.unwrap().to_bits(), w.sim_cpi.unwrap().to_bits());
            assert_eq!(
                c.sim_power.unwrap().to_bits(),
                w.sim_power.unwrap().to_bits()
            );
        }
    }

    #[test]
    fn builder_batches_workloads_in_order() {
        let spec_a = WorkloadSpec::by_name("astar").unwrap();
        let spec_b = WorkloadSpec::by_name("gcc").unwrap();
        let prof = Profiler::new(ProfilerConfig::fast_test());
        let pa = prof.profile_named("astar", &mut spec_a.trace(20_000));
        let pb = prof.profile_named("gcc", &mut spec_b.trace(20_000));
        let batch = SweepBuilder::new()
            .space(DesignSpace::small())
            .profile(&pa)
            .profile(&pb)
            .run();
        assert_eq!(batch.evaluations.len(), 2);
        assert!(batch.evaluations.iter().all(|e| e.outcomes.len() == 32));
        assert_eq!(batch.evaluations[0].outcomes[0].workload, "astar");
        assert_eq!(batch.evaluations[1].outcomes[0].workload, "gcc");
        assert!(batch.for_workload("gcc").is_some());
        assert!(batch.for_workload("milc").is_none());
        assert_eq!(batch.outcomes().count(), 64);

        // Lookup works even when the point set is empty (names are
        // recorded at build time, not inferred from outcome rows).
        let empty = SweepBuilder::new().points(Vec::new()).profile(&pa).run();
        assert!(empty.for_workload("astar").is_some());
        assert_eq!(empty.for_workload("astar").unwrap().outcomes.len(), 0);

        // Batch = per-workload sweeps, bit for bit.
        let lone = SpaceEvaluation::run_serial(
            &DesignSpace::small().enumerate(),
            &pb,
            None,
            &SweepConfig::default(),
        );
        for (a, b) in batch.evaluations[1].outcomes.iter().zip(&lone.outcomes) {
            assert_eq!(a.model_cpi.to_bits(), b.model_cpi.to_bits());
        }
    }

    /// `.space(...)` and `.points(...)` used to overwrite each other
    /// silently (last-call-wins); the combination is now a hard error in
    /// both orders, while repeating one setter still replaces.
    #[test]
    #[should_panic(expected = "conflicts with the earlier")]
    fn points_then_space_is_an_error() {
        let _ = SweepBuilder::new()
            .points(DesignSpace::small().enumerate()[..2].to_vec())
            .space(DesignSpace::small());
    }

    #[test]
    #[should_panic(expected = "conflicts with the earlier")]
    fn space_then_points_is_an_error() {
        let _ = SweepBuilder::new()
            .space(DesignSpace::small())
            .points(Vec::new());
    }

    #[test]
    fn repeating_the_same_points_setter_replaces() {
        let points = DesignSpace::small().enumerate();
        let b = SweepBuilder::new()
            .points(points[..4].to_vec())
            .points(points[..2].to_vec());
        assert_eq!(b.points.len(), 2);
        let b = SweepBuilder::new()
            .space(DesignSpace::small())
            .space(DesignSpace::validation_subspace());
        assert_eq!(b.points.len(), 27);
    }
}

//! Pareto frontiers and pruning-quality metrics (thesis §7.4).
//!
//! Two representations share one dominance rule:
//!
//! * [`ParetoFront`] classifies a *materialized* point set (which designs
//!   are optimal, by index) — the §7.4 pruning-metric workhorse,
//! * [`ParetoAccumulator`] maintains the non-dominated subset *online*,
//!   one push at a time in bounded memory — what the streaming sweeps
//!   fold millions of points through. Strict dominance is transitive, so
//!   the surviving set is exactly the global non-dominated subset no
//!   matter the push or [`merge`](ParetoAccumulator::merge) order;
//!   [`into_sorted`](ParetoAccumulator::into_sorted) then fixes the
//!   output order by id, making sharded and serial folds bit-identical.
//!
//! [`ParetoFront::of`] is itself built on the accumulator, so the two can
//! never disagree.

use serde::{Deserialize, Serialize};

/// Whether `a` strictly dominates `b` (≤ on both axes, < on at least
/// one; both axes minimized).
#[inline]
fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

/// One surviving frontier member of a [`ParetoAccumulator`]: the dense
/// id it was pushed under, its (delay, power) coordinates, and the
/// caller's payload (e.g. a full streamed outcome).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrontEntry<T> {
    /// Dense design id (also the deterministic output sort key).
    pub id: usize,
    /// (delay, power) coordinates, both minimized.
    pub coords: (f64, f64),
    /// Caller payload carried along with the point.
    pub item: T,
}

// The vendored serde derive does not handle generics; these mirror what
// it would generate for the concrete fields.
impl<T: Serialize> Serialize for FrontEntry<T> {
    fn to_json(&self, out: &mut String) {
        out.push('{');
        out.push_str("\"id\":");
        self.id.to_json(out);
        out.push_str(",\"coords\":");
        self.coords.to_json(out);
        out.push_str(",\"item\":");
        self.item.to_json(out);
        out.push('}');
    }
}

impl<T: Deserialize> Deserialize for FrontEntry<T> {
    fn from_json(p: &mut serde::json::Parser<'_>) -> Result<Self, serde::json::Error> {
        let mut id = None;
        let mut coords = None;
        let mut item = None;
        p.object_start()?;
        while let Some(key) = p.next_key()? {
            match key.as_str() {
                "id" => id = Some(Deserialize::from_json(p)?),
                "coords" => coords = Some(Deserialize::from_json(p)?),
                "item" => item = Some(Deserialize::from_json(p)?),
                _ => p.skip_value()?,
            }
        }
        Ok(FrontEntry {
            id: id.ok_or_else(|| serde::json::Error::missing("id"))?,
            coords: coords.ok_or_else(|| serde::json::Error::missing("coords"))?,
            item: item.ok_or_else(|| serde::json::Error::missing("item"))?,
        })
    }
}

/// An online Pareto frontier over (delay, power) points, both minimized:
/// push one point at a time, merge shards, read the surviving
/// non-dominated subset. Memory is bounded by the frontier size, not the
/// stream length.
///
/// ```
/// use pmt_dse::ParetoAccumulator;
///
/// let mut front = ParetoAccumulator::new();
/// assert!(front.push(0, (1.0, 10.0), ()));
/// assert!(front.push(1, (2.0, 5.0), ()));
/// assert!(!front.push(2, (2.5, 11.0), ())); // dominated by point 0
/// assert!(front.push(3, (0.5, 20.0), ()));
/// assert_eq!(front.ids(), vec![0, 1, 3]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ParetoAccumulator<T = ()> {
    entries: Vec<FrontEntry<T>>,
}

impl<T> ParetoAccumulator<T> {
    /// An empty frontier.
    pub fn new() -> ParetoAccumulator<T> {
        ParetoAccumulator {
            entries: Vec::new(),
        }
    }

    /// Offer one point. Returns whether it joined the frontier (it may
    /// evict previously accepted points it dominates). Duplicate
    /// coordinates are all kept, matching [`ParetoFront::of`].
    pub fn push(&mut self, id: usize, coords: (f64, f64), item: T) -> bool {
        if self.entries.iter().any(|e| dominates(e.coords, coords)) {
            return false;
        }
        self.entries.retain(|e| !dominates(coords, e.coords));
        self.entries.push(FrontEntry { id, coords, item });
        true
    }

    /// Merge another frontier in (set-union semantics: dominance is
    /// re-checked both ways, so shard-local survivors that a sibling
    /// shard dominates are evicted here).
    pub fn merge(&mut self, other: ParetoAccumulator<T>) {
        for e in other.entries {
            self.push(e.id, e.coords, e.item);
        }
    }

    /// Current number of frontier members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no point has survived (or none was pushed).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Surviving members in insertion order (use
    /// [`into_sorted`](Self::into_sorted) for the deterministic order).
    pub fn entries(&self) -> &[FrontEntry<T>] {
        &self.entries
    }

    /// Surviving ids, sorted ascending.
    pub fn ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.entries.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids
    }

    /// Consume into the frontier sorted by id — a pure function of the
    /// pushed *set*, independent of push and merge order.
    pub fn into_sorted(mut self) -> Vec<FrontEntry<T>> {
        self.entries.sort_by_key(|e| e.id);
        self.entries
    }
}

impl<T: Clone> ParetoAccumulator<T> {
    /// Borrowing form of [`into_sorted`](Self::into_sorted): the frontier
    /// sorted by id, with the accumulator left intact. This is the
    /// canonical snapshot order of the sharded sweeps.
    pub fn sorted_entries(&self) -> Vec<FrontEntry<T>> {
        let mut entries = self.entries.clone();
        entries.sort_by_key(|e| e.id);
        entries
    }
}

/// The Pareto-optimal subset of a set of (delay, power) points, both
/// minimized.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParetoFront {
    optimal: Vec<bool>,
}

impl ParetoFront {
    /// Classify every point. `points` are (delay, power) pairs; smaller is
    /// better on both axes. Duplicate coordinates are all kept optimal.
    pub fn of(points: &[(f64, f64)]) -> ParetoFront {
        let mut acc: ParetoAccumulator = ParetoAccumulator::new();
        for (i, &p) in points.iter().enumerate() {
            acc.push(i, p, ());
        }
        let mut optimal = vec![false; points.len()];
        for e in acc.entries() {
            optimal[e.id] = true;
        }
        ParetoFront { optimal }
    }

    /// Whether point `i` is non-dominated.
    pub fn is_optimal(&self, i: usize) -> bool {
        self.optimal[i]
    }

    /// Indices of the non-dominated points.
    pub fn indices(&self) -> Vec<usize> {
        (0..self.optimal.len())
            .filter(|&i| self.optimal[i])
            .collect()
    }

    /// Number of points classified.
    pub fn len(&self) -> usize {
        self.optimal.len()
    }

    /// Whether the front is empty (no points).
    pub fn is_empty(&self) -> bool {
        self.optimal.is_empty()
    }
}

/// The four pruning metrics of thesis §7.4, comparing the designs the
/// *model* selects as Pareto-optimal against the simulator's truth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PruningQuality {
    /// Fraction of truly optimal designs the model found (TP/(TP+FN)).
    pub sensitivity: f64,
    /// Fraction of truly non-optimal designs the model excluded
    /// (TN/(TN+FP)).
    pub specificity: f64,
    /// Overall classification accuracy ((TP+TN)/N).
    pub accuracy: f64,
    /// Hypervolume ratio: HV(true coordinates of model-selected designs) /
    /// HV(true front) — 1.0 means the selection spans the whole frontier
    /// (Fig 7.8).
    pub hvr: f64,
}

impl PruningQuality {
    /// Compute all four metrics.
    ///
    /// * `truth` — simulator-measured (delay, power) per design,
    /// * `predicted` — model-predicted (delay, power) per design (same
    ///   order).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or empty input.
    pub fn evaluate(truth: &[(f64, f64)], predicted: &[(f64, f64)]) -> PruningQuality {
        assert_eq!(truth.len(), predicted.len(), "mismatched point sets");
        assert!(!truth.is_empty(), "empty design space");
        let true_front = ParetoFront::of(truth);
        let pred_front = ParetoFront::of(predicted);

        let mut tp = 0usize;
        let mut tn = 0usize;
        let mut fp = 0usize;
        let mut fneg = 0usize;
        for i in 0..truth.len() {
            match (true_front.is_optimal(i), pred_front.is_optimal(i)) {
                (true, true) => tp += 1,
                (true, false) => fneg += 1,
                (false, true) => fp += 1,
                (false, false) => tn += 1,
            }
        }
        let sens = if tp + fneg > 0 {
            tp as f64 / (tp + fneg) as f64
        } else {
            1.0
        };
        let spec = if tn + fp > 0 {
            tn as f64 / (tn + fp) as f64
        } else {
            1.0
        };
        let acc = (tp + tn) as f64 / truth.len() as f64;

        // HVR: hypervolume of the *true* coordinates of the model-selected
        // designs over the hypervolume of the true front, w.r.t. a shared
        // reference point.
        let reference = reference_point(truth);
        let true_pts: Vec<(f64, f64)> = true_front.indices().iter().map(|&i| truth[i]).collect();
        let sel_pts: Vec<(f64, f64)> = pred_front.indices().iter().map(|&i| truth[i]).collect();
        let hv_true = hypervolume(&true_pts, reference);
        let hv_sel = hypervolume(&sel_pts, reference);
        let hvr = if hv_true > 0.0 {
            (hv_sel / hv_true).min(1.0)
        } else {
            1.0
        };

        PruningQuality {
            sensitivity: sens,
            specificity: spec,
            accuracy: acc,
            hvr,
        }
    }
}

fn reference_point(points: &[(f64, f64)]) -> (f64, f64) {
    let mx = points.iter().map(|p| p.0).fold(0.0f64, f64::max);
    let my = points.iter().map(|p| p.1).fold(0.0f64, f64::max);
    (mx * 1.05, my * 1.05)
}

/// 2-D dominated hypervolume w.r.t. `reference` (both axes minimized).
pub fn hypervolume(points: &[(f64, f64)], reference: (f64, f64)) -> f64 {
    // Keep only the non-dominated subset, sorted by delay.
    let front = ParetoFront::of(points);
    let mut pts: Vec<(f64, f64)> = front.indices().iter().map(|&i| points[i]).collect();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    pts.dedup();
    let mut hv = 0.0;
    let mut prev_x = reference.0;
    // Sweep right-to-left: each point owns the rectangle to its right up
    // to the previous x, down from the reference power.
    for &(x, y) in pts.iter().rev() {
        if x >= reference.0 || y >= reference.1 {
            continue;
        }
        hv += (prev_x - x).max(0.0) * (reference.1 - y).max(0.0);
        prev_x = prev_x.min(x);
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_front() {
        let pts = vec![(1.0, 10.0), (2.0, 5.0), (3.0, 3.0), (2.5, 11.0), (3.5, 4.0)];
        let f = ParetoFront::of(&pts);
        assert!(f.is_optimal(0));
        assert!(f.is_optimal(1));
        assert!(f.is_optimal(2));
        assert!(!f.is_optimal(3)); // dominated by (2.0, 5.0)
        assert!(!f.is_optimal(4)); // dominated by (3.0, 3.0)
        assert_eq!(f.indices(), vec![0, 1, 2]);
    }

    #[test]
    fn single_point_is_optimal() {
        let f = ParetoFront::of(&[(1.0, 1.0)]);
        assert!(f.is_optimal(0));
    }

    #[test]
    fn identical_points_stay_optimal() {
        let f = ParetoFront::of(&[(1.0, 1.0), (1.0, 1.0)]);
        assert!(f.is_optimal(0) && f.is_optimal(1));
    }

    #[test]
    fn accumulator_evicts_newly_dominated_members() {
        let mut acc = ParetoAccumulator::new();
        assert!(acc.push(0, (3.0, 3.0), "a"));
        assert!(acc.push(1, (2.0, 5.0), "b"));
        // Dominates point 0 but not point 1.
        assert!(acc.push(2, (2.5, 2.5), "c"));
        assert_eq!(acc.ids(), vec![1, 2]);
        let sorted = acc.into_sorted();
        assert_eq!(sorted.len(), 2);
        assert_eq!((sorted[0].id, sorted[0].item), (1, "b"));
        assert_eq!((sorted[1].id, sorted[1].item), (2, "c"));
    }

    #[test]
    fn accumulator_merge_equals_single_stream() {
        let pts = [
            (1.0, 10.0),
            (2.0, 5.0),
            (3.0, 3.0),
            (2.5, 11.0),
            (3.5, 4.0),
            (1.0, 10.0), // duplicate of 0: both survive
        ];
        let mut whole = ParetoAccumulator::new();
        for (i, &p) in pts.iter().enumerate() {
            whole.push(i, p, ());
        }
        // Shard in two, fold independently, merge in either order.
        for (a_range, b_range) in [((0..3), (3..6)), ((3..6), (0..3))] {
            let mut a = ParetoAccumulator::new();
            for i in a_range {
                a.push(i, pts[i], ());
            }
            let mut b = ParetoAccumulator::new();
            for i in b_range {
                b.push(i, pts[i], ());
            }
            a.merge(b);
            assert_eq!(a.ids(), whole.ids());
        }
        assert_eq!(whole.ids(), vec![0, 1, 2, 5]);
    }

    #[test]
    fn accumulator_agrees_with_front_classification() {
        let pts = vec![(1.0, 10.0), (2.0, 5.0), (3.0, 3.0), (2.5, 11.0), (3.5, 4.0)];
        let mut acc = ParetoAccumulator::new();
        for (i, &p) in pts.iter().enumerate() {
            acc.push(i, p, ());
        }
        assert_eq!(acc.ids(), ParetoFront::of(&pts).indices());
        assert!(!acc.is_empty());
        assert_eq!(acc.len(), 3);
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let truth = vec![(1.0, 10.0), (2.0, 5.0), (2.5, 11.0), (3.0, 8.0)];
        let q = PruningQuality::evaluate(&truth, &truth);
        assert_eq!(q.sensitivity, 1.0);
        assert_eq!(q.specificity, 1.0);
        assert_eq!(q.accuracy, 1.0);
        assert!((q.hvr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_prediction_scores_poorly() {
        let truth = vec![(1.0, 10.0), (2.0, 5.0), (2.5, 11.0), (3.0, 8.0)];
        // Predictions that make the dominated points look optimal.
        let pred = vec![(5.0, 50.0), (6.0, 60.0), (1.0, 2.0), (0.5, 3.0)];
        let q = PruningQuality::evaluate(&truth, &pred);
        assert!(q.sensitivity < 0.5);
        assert!(q.hvr < 1.0);
    }

    #[test]
    fn biased_but_consistent_predictions_score_perfectly() {
        // The thesis' key claim: a uniform bias does not hurt pruning.
        let truth = vec![(1.0, 10.0), (2.0, 5.0), (2.5, 11.0), (3.0, 3.0)];
        let pred: Vec<(f64, f64)> = truth.iter().map(|&(d, p)| (d * 1.3, p * 1.1)).collect();
        let q = PruningQuality::evaluate(&truth, &pred);
        assert_eq!(q.sensitivity, 1.0);
        assert_eq!(q.specificity, 1.0);
        assert!((q.hvr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_of_known_rectangle() {
        // One point at (1,1) with reference (2,2): HV = 1.
        let hv = hypervolume(&[(1.0, 1.0)], (2.0, 2.0));
        assert!((hv - 1.0).abs() < 1e-12);
        // Adding a dominated point changes nothing.
        let hv2 = hypervolume(&[(1.0, 1.0), (1.5, 1.5)], (2.0, 2.0));
        assert!((hv2 - 1.0).abs() < 1e-12);
        // A second frontier point adds its exclusive strip.
        let hv3 = hypervolume(&[(1.0, 1.0), (0.5, 1.8)], (2.0, 2.0));
        assert!(hv3 > hv && hv3 < 2.0);
    }

    #[test]
    fn missing_extreme_designs_lowers_hvr() {
        // True front spans three designs; the model only finds the middle.
        let truth = vec![(1.0, 10.0), (2.0, 5.0), (4.0, 1.0), (3.0, 9.0)];
        let pred = vec![(9.0, 9.0), (2.0, 5.0), (9.0, 9.5), (1.0, 1.0)];
        let q = PruningQuality::evaluate(&truth, &pred);
        assert!(q.hvr < 0.95, "hvr {}", q.hvr);
        assert!(q.sensitivity < 1.0);
    }
}

//! Constrained design selection (thesis §7.2, Table 7.1).

use crate::sweep::PointOutcome;

/// The fastest design whose predicted power fits `budget_w`, by model
/// coordinates. Returns `None` when nothing fits.
pub fn fastest_under_power(outcomes: &[PointOutcome], budget_w: f64) -> Option<&PointOutcome> {
    outcomes
        .iter()
        .filter(|o| o.model_power <= budget_w)
        .min_by(|a, b| a.model_seconds.partial_cmp(&b.model_seconds).unwrap())
}

/// The lowest-power design whose predicted delay fits `deadline_s`.
pub fn frugalest_under_delay(outcomes: &[PointOutcome], deadline_s: f64) -> Option<&PointOutcome> {
    outcomes
        .iter()
        .filter(|o| o.model_seconds <= deadline_s)
        .min_by(|a, b| a.model_power.partial_cmp(&b.model_power).unwrap())
}

/// The design minimizing energy (power × delay) outright.
pub fn min_energy(outcomes: &[PointOutcome]) -> Option<&PointOutcome> {
    outcomes.iter().min_by(|a, b| {
        (a.model_power * a.model_seconds)
            .partial_cmp(&(b.model_power * b.model_seconds))
            .unwrap()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: usize, seconds: f64, power: f64) -> PointOutcome {
        PointOutcome {
            design_id: id,
            workload: "w".into(),
            model_cpi: 1.0,
            model_power: power,
            model_seconds: seconds,
            sim_cpi: None,
            sim_power: None,
            sim_seconds: None,
        }
    }

    fn sample() -> Vec<PointOutcome> {
        vec![
            outcome(0, 1.0, 30.0),
            outcome(1, 1.5, 18.0),
            outcome(2, 2.5, 12.0),
            outcome(3, 0.8, 45.0),
        ]
    }

    #[test]
    fn power_budget_picks_fastest_fitting() {
        let o = sample();
        assert_eq!(fastest_under_power(&o, 20.0).unwrap().design_id, 1);
        assert_eq!(fastest_under_power(&o, 100.0).unwrap().design_id, 3);
        assert!(fastest_under_power(&o, 5.0).is_none());
    }

    #[test]
    fn deadline_picks_frugalest_fitting() {
        let o = sample();
        assert_eq!(frugalest_under_delay(&o, 1.6).unwrap().design_id, 1);
        assert_eq!(frugalest_under_delay(&o, 0.9).unwrap().design_id, 3);
        assert!(frugalest_under_delay(&o, 0.1).is_none());
    }

    #[test]
    fn min_energy_balances_both() {
        let o = sample();
        // Energies: 30, 27, 30, 36 → design 1.
        assert_eq!(min_energy(&o).unwrap().design_id, 1);
    }
}

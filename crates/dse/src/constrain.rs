//! Constrained design selection (thesis §7.2, Table 7.1) and cheap
//! pre-prediction filters for streaming sweeps.
//!
//! Two kinds of constraint live here:
//!
//! * [`DesignConstraints`] — bounds on the machine *description*
//!   (width, ROB, cache capacities, MSHRs, clock). These are checked
//!   **before** any model work, so a streaming sweep rejects points for
//!   the cost of a mixed-radix decode — the cheap end of the funnel.
//! * The selection helpers below ([`fastest_under_power`] etc.) — bounds
//!   on *predicted* quantities, applied after the model has run.

use crate::sweep::PointOutcome;
use pmt_uarch::DesignPoint;
use serde::{Deserialize, Serialize};

/// Cheap machine-description constraints, evaluated per design point
/// *before* prediction. Unset fields admit everything; every bound is
/// inclusive.
///
/// ```
/// use pmt_dse::constrain::DesignConstraints;
/// use pmt_uarch::DesignSpace;
///
/// let c = DesignConstraints::new().max_dispatch_width(4).max_rob(128);
/// let admitted = DesignSpace::thesis_table_6_3()
///     .iter()
///     .filter(|p| c.admits(p))
///     .count();
/// assert_eq!(admitted, 108); // 2 of 3 widths × 2 of 3 ROBs × 27 cache combos
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DesignConstraints {
    /// Largest admitted dispatch width.
    pub max_dispatch_width: Option<u32>,
    /// Largest admitted ROB size.
    pub max_rob: Option<u32>,
    /// Largest admitted L1-D capacity (KiB).
    pub max_l1_kb: Option<u32>,
    /// Largest admitted L2 capacity (KiB).
    pub max_l2_kb: Option<u32>,
    /// Largest admitted L3 capacity (KiB).
    pub max_l3_kb: Option<u32>,
    /// Largest admitted MSHR depth.
    pub max_mshr_entries: Option<u32>,
    /// Fastest admitted clock (GHz).
    pub max_frequency_ghz: Option<f64>,
}

impl DesignConstraints {
    /// No constraints: admits every point.
    pub fn new() -> DesignConstraints {
        DesignConstraints::default()
    }

    /// Bound the dispatch width.
    pub fn max_dispatch_width(mut self, width: u32) -> Self {
        self.max_dispatch_width = Some(width);
        self
    }

    /// Bound the ROB size.
    pub fn max_rob(mut self, rob: u32) -> Self {
        self.max_rob = Some(rob);
        self
    }

    /// Bound the L1-D capacity (KiB).
    pub fn max_l1_kb(mut self, kb: u32) -> Self {
        self.max_l1_kb = Some(kb);
        self
    }

    /// Bound the L2 capacity (KiB).
    pub fn max_l2_kb(mut self, kb: u32) -> Self {
        self.max_l2_kb = Some(kb);
        self
    }

    /// Bound the L3 capacity (KiB).
    pub fn max_l3_kb(mut self, kb: u32) -> Self {
        self.max_l3_kb = Some(kb);
        self
    }

    /// Bound the MSHR depth.
    pub fn max_mshr_entries(mut self, entries: u32) -> Self {
        self.max_mshr_entries = Some(entries);
        self
    }

    /// Bound the clock frequency (GHz).
    pub fn max_frequency_ghz(mut self, ghz: f64) -> Self {
        self.max_frequency_ghz = Some(ghz);
        self
    }

    /// Whether every field is unset (admits everything trivially).
    pub fn is_unconstrained(&self) -> bool {
        *self == DesignConstraints::default()
    }

    /// Whether `point`'s machine description satisfies every set bound.
    /// Reads the machine config directly, so it works for any
    /// [`LazyDesignSpace`](crate::LazyDesignSpace) implementation, not
    /// just the thesis grid.
    pub fn admits(&self, point: &DesignPoint) -> bool {
        let m = &point.machine;
        self.max_dispatch_width
            .is_none_or(|v| m.core.dispatch_width <= v)
            && self.max_rob.is_none_or(|v| m.core.rob_size <= v)
            && self.max_l1_kb.is_none_or(|v| m.caches.l1d.size_kb <= v)
            && self.max_l2_kb.is_none_or(|v| m.caches.l2.size_kb <= v)
            && self.max_l3_kb.is_none_or(|v| m.caches.l3.size_kb <= v)
            && self
                .max_mshr_entries
                .is_none_or(|v| m.mem.mshr_entries <= v)
            && self
                .max_frequency_ghz
                .is_none_or(|v| m.core.frequency_ghz <= v)
    }
}

/// The fastest design whose predicted power fits `budget_w`, by model
/// coordinates. Returns `None` when nothing fits.
pub fn fastest_under_power(outcomes: &[PointOutcome], budget_w: f64) -> Option<&PointOutcome> {
    outcomes
        .iter()
        .filter(|o| o.model_power <= budget_w)
        .min_by(|a, b| a.model_seconds.partial_cmp(&b.model_seconds).unwrap())
}

/// The lowest-power design whose predicted delay fits `deadline_s`.
pub fn frugalest_under_delay(outcomes: &[PointOutcome], deadline_s: f64) -> Option<&PointOutcome> {
    outcomes
        .iter()
        .filter(|o| o.model_seconds <= deadline_s)
        .min_by(|a, b| a.model_power.partial_cmp(&b.model_power).unwrap())
}

/// The design minimizing energy (power × delay) outright.
pub fn min_energy(outcomes: &[PointOutcome]) -> Option<&PointOutcome> {
    outcomes.iter().min_by(|a, b| {
        (a.model_power * a.model_seconds)
            .partial_cmp(&(b.model_power * b.model_seconds))
            .unwrap()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: usize, seconds: f64, power: f64) -> PointOutcome {
        PointOutcome {
            design_id: id,
            workload: "w".into(),
            model_cpi: 1.0,
            model_power: power,
            model_seconds: seconds,
            sim_cpi: None,
            sim_power: None,
            sim_seconds: None,
        }
    }

    fn sample() -> Vec<PointOutcome> {
        vec![
            outcome(0, 1.0, 30.0),
            outcome(1, 1.5, 18.0),
            outcome(2, 2.5, 12.0),
            outcome(3, 0.8, 45.0),
        ]
    }

    #[test]
    fn power_budget_picks_fastest_fitting() {
        let o = sample();
        assert_eq!(fastest_under_power(&o, 20.0).unwrap().design_id, 1);
        assert_eq!(fastest_under_power(&o, 100.0).unwrap().design_id, 3);
        assert!(fastest_under_power(&o, 5.0).is_none());
    }

    #[test]
    fn deadline_picks_frugalest_fitting() {
        let o = sample();
        assert_eq!(frugalest_under_delay(&o, 1.6).unwrap().design_id, 1);
        assert_eq!(frugalest_under_delay(&o, 0.9).unwrap().design_id, 3);
        assert!(frugalest_under_delay(&o, 0.1).is_none());
    }

    #[test]
    fn min_energy_balances_both() {
        let o = sample();
        // Energies: 30, 27, 30, 36 → design 1.
        assert_eq!(min_energy(&o).unwrap().design_id, 1);
    }

    #[test]
    fn unset_constraints_admit_everything() {
        let c = DesignConstraints::new();
        assert!(c.is_unconstrained());
        for p in pmt_uarch::DesignSpace::small().iter() {
            assert!(c.admits(&p));
        }
    }

    #[test]
    fn each_bound_rejects_exactly_its_axis() {
        let space = pmt_uarch::DesignSpace::small();
        let points: Vec<_> = space.iter().collect();
        let widths = |c: &DesignConstraints| points.iter().filter(|p| c.admits(p)).count();
        assert_eq!(widths(&DesignConstraints::new().max_dispatch_width(2)), 16);
        assert_eq!(widths(&DesignConstraints::new().max_rob(64)), 16);
        assert_eq!(widths(&DesignConstraints::new().max_l1_kb(16)), 16);
        assert_eq!(widths(&DesignConstraints::new().max_l2_kb(128)), 16);
        assert_eq!(widths(&DesignConstraints::new().max_l3_kb(2048)), 16);
        // Bounds below every value reject the whole space; the reference
        // MSHR depth (10) and clock (2.66 GHz) are shared by all points.
        assert_eq!(widths(&DesignConstraints::new().max_mshr_entries(4)), 0);
        assert_eq!(widths(&DesignConstraints::new().max_frequency_ghz(2.0)), 0);
        assert_eq!(widths(&DesignConstraints::new().max_mshr_entries(10)), 32);
        // Bounds compose conjunctively.
        let c = DesignConstraints::new().max_dispatch_width(2).max_rob(64);
        assert!(!c.is_unconstrained());
        assert_eq!(widths(&c), 8);
    }
}

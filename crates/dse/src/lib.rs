//! Design-space exploration (thesis Ch 7).
//!
//! The point of a micro-architecture independent model is sweeping large
//! design spaces from one profile. This crate provides:
//!
//! * [`SpaceEvaluation`] — evaluate the interval model (and optionally the
//!   reference simulator) over a [`DesignSpace`](pmt_uarch::DesignSpace) ×
//!   workload grid, rayon-parallel with deterministic, serially
//!   bit-identical results,
//! * [`SweepBuilder`] — the batch front-end: several profiled workloads ×
//!   one design space as a single load-balanced parallel job,
//! * [`StreamingSweep`] — the large-scale path: points come lazily from
//!   any [`LazyDesignSpace`] (the thesis grid, or a [`ProductSpace`] of
//!   user-defined axes, easily 10⁶+ points) and fold into **online
//!   accumulators** — an incremental Pareto frontier
//!   ([`ParetoAccumulator`]), a bounded top-K ([`TopK`]) and streaming
//!   moments — so memory stays bounded by the *answer*, not the space,
//! * [`corrected_top`] / [`corrected_frontier`] — the optional learned
//!   residual layer: apply a trained `pmt_ml` corrector to a summary's
//!   survivors **after** the fold, leaving the accumulator bytes (and
//!   every byte-identity contract built on them) untouched,
//! * [`ParetoFront`] — non-dominated (delay, power) extraction plus the
//!   pruning-quality metrics of §7.4: sensitivity, specificity, accuracy
//!   and the hypervolume ratio (HVR, Fig 7.8),
//! * [`dvfs`] — voltage/frequency sweeps and ED²P optimization (§7.3),
//!   including the lazy [`dvfs::explore_iter`] path,
//! * [`constrain`] — cheap pre-prediction machine filters
//!   ([`constrain::DesignConstraints`]) and optimal-design selection
//!   under power or performance budgets (§7.2, Table 7.1),
//! * [`EmpiricalModel`] — the ridge-regression comparator of §7.5.
//!
//! # Example
//!
//! ```
//! use pmt_dse::ParetoFront;
//!
//! // Three designs: two non-dominated, one dominated.
//! let pts = vec![(1.0, 10.0), (2.0, 5.0), (2.5, 11.0)];
//! let front = ParetoFront::of(&pts);
//! assert!(front.is_optimal(0) && front.is_optimal(1) && !front.is_optimal(2));
//! ```
//!
//! Sweeping a space too large to materialize:
//!
//! ```
//! use pmt_dse::{LazyDesignSpace, Objective, ProductSpace, StreamingSweep};
//! use pmt_profiler::{Profiler, ProfilerConfig};
//! use pmt_uarch::MachineConfig;
//! use pmt_workloads::WorkloadSpec;
//!
//! let spec = WorkloadSpec::by_name("gcc").unwrap();
//! let profile =
//!     Profiler::new(ProfilerConfig::fast_test()).profile_named("gcc", &mut spec.trace(20_000));
//! // Declare the space lazily; only visited points ever exist.
//! let space = ProductSpace::new(MachineConfig::nehalem())
//!     .dispatch_widths(&[2, 4, 6])
//!     .rob_sizes(&[64, 128, 256])
//!     .mshr_entries(&[8, 16]);
//! let summary = StreamingSweep::new(&profile)
//!     .objective(Objective::Energy)
//!     .top_k(3)
//!     .run(&space);
//! assert_eq!(summary.evaluated, space.len());
//! assert!(summary.frontier.len() < space.len());
//! ```

pub mod constrain;
mod corrected;
pub mod dvfs;
mod empirical;
mod pareto;
mod space;
mod streaming;
mod sweep;

pub use constrain::DesignConstraints;
pub use corrected::{corrected_frontier, corrected_top, CorrectedEntry};
pub use empirical::EmpiricalModel;
pub use pareto::{FrontEntry, ParetoAccumulator, ParetoFront, PruningQuality};
pub use space::{Axis, LazyDesignSpace, LazyPoints, ProductSpace};
pub use streaming::{
    chunk_count, merge_shards, shard_chunk_range, Objective, RankedEntry, ShardAccumulators,
    StreamPoint, StreamingSummary, StreamingSweep, TopK, DEFAULT_CHUNK,
};
pub use sweep::{
    sim_cache_key, BatchEvaluation, PointOutcome, SpaceEvaluation, SweepBuilder, SweepConfig,
};

//! Design-space exploration (thesis Ch 7).
//!
//! The point of a micro-architecture independent model is sweeping large
//! design spaces from one profile. This crate provides:
//!
//! * [`SpaceEvaluation`] — evaluate the interval model (and optionally the
//!   reference simulator) over a [`DesignSpace`](pmt_uarch::DesignSpace) ×
//!   workload grid, rayon-parallel with deterministic, serially
//!   bit-identical results,
//! * [`SweepBuilder`] — the batch front-end: several profiled workloads ×
//!   one design space as a single load-balanced parallel job,
//! * [`ParetoFront`] — non-dominated (delay, power) extraction plus the
//!   pruning-quality metrics of §7.4: sensitivity, specificity, accuracy
//!   and the hypervolume ratio (HVR, Fig 7.8),
//! * [`dvfs`] — voltage/frequency sweeps and ED²P optimization (§7.3),
//! * [`constrain`] — optimal-design selection under power or performance
//!   budgets (§7.2, Table 7.1),
//! * [`EmpiricalModel`] — the ridge-regression comparator of §7.5.
//!
//! # Example
//!
//! ```
//! use pmt_dse::ParetoFront;
//!
//! // Three designs: two non-dominated, one dominated.
//! let pts = vec![(1.0, 10.0), (2.0, 5.0), (2.5, 11.0)];
//! let front = ParetoFront::of(&pts);
//! assert!(front.is_optimal(0) && front.is_optimal(1) && !front.is_optimal(2));
//! ```

pub mod constrain;
pub mod dvfs;
mod empirical;
mod pareto;
mod sweep;

pub use empirical::EmpiricalModel;
pub use pareto::{ParetoFront, PruningQuality};
pub use sweep::{
    sim_cache_key, BatchEvaluation, PointOutcome, SpaceEvaluation, SweepBuilder, SweepConfig,
};

//! DVFS exploration (thesis §7.3, Table 7.2, Fig 7.3).
//!
//! Changing the clock changes memory latency *in cycles* (DRAM
//! nanoseconds are fixed), so every operating point gets a rescaled
//! machine description before the model runs.

use pmt_core::{BatchPredictor, ModelConfig, PreparedProfile};
use pmt_power::PowerModel;
use pmt_profiler::ApplicationProfile;
use pmt_uarch::{MachineConfig, OperatingPoint};
use serde::{Deserialize, Serialize};

/// One evaluated operating point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DvfsOutcome {
    /// The operating point.
    pub point: OperatingPoint,
    /// Predicted CPI at this point.
    pub cpi: f64,
    /// Execution time in seconds.
    pub seconds: f64,
    /// Total power in watts.
    pub power: f64,
    /// Energy in joules.
    pub energy: f64,
    /// Energy-delay product.
    pub edp: f64,
    /// Energy-delay-squared product (the thesis' metric).
    pub ed2p: f64,
}

/// Rescale a machine description to an operating point: clock, voltage
/// and the memory-subsystem latencies expressed in core cycles.
pub fn machine_at(base: &MachineConfig, point: OperatingPoint) -> MachineConfig {
    let mut m = base.clone();
    let scale = point.frequency_ghz / base.core.frequency_ghz;
    m.core.frequency_ghz = point.frequency_ghz;
    m.core.vdd = point.vdd;
    m.mem.dram_latency = ((base.mem.dram_latency as f64) * scale).round().max(1.0) as u32;
    m.mem.bus_transfer_cycles = ((base.mem.bus_transfer_cycles as f64) * scale)
        .round()
        .max(1.0) as u32;
    m.name = format!("{}@{:.2}GHz", base.name, point.frequency_ghz);
    m
}

/// Evaluate a profile across operating points (prepared once; every
/// operating point reuses the same machine-independent fits).
///
/// This materializes the outcome `Vec`; for large frequency sweeps or
/// online reduction, use [`explore_iter`] directly — `explore` is a thin
/// `collect` over it, so the two are bit-identical.
pub fn explore(
    base: &MachineConfig,
    points: &[OperatingPoint],
    profile: &ApplicationProfile,
    model_cfg: &ModelConfig,
) -> Vec<DvfsOutcome> {
    let prepared = PreparedProfile::new(profile);
    explore_iter(base, points.iter().copied(), &prepared, model_cfg).collect()
}

/// Lazily evaluate operating points against an already-prepared profile:
/// the streaming DVFS path. Nothing is materialized — chain it straight
/// into an online reduction like [`best_ed2p_of`], or sweep a dense
/// frequency grid ([`frequency_sweep`]) without holding the outcomes.
///
/// ```
/// use pmt_core::{ModelConfig, PreparedProfile};
/// use pmt_dse::dvfs::{best_ed2p_of, explore_iter, frequency_sweep};
/// use pmt_profiler::{Profiler, ProfilerConfig};
/// use pmt_uarch::MachineConfig;
/// use pmt_workloads::WorkloadSpec;
///
/// let spec = WorkloadSpec::by_name("gcc").unwrap();
/// let profile =
///     Profiler::new(ProfilerConfig::fast_test()).profile_named("gcc", &mut spec.trace(20_000));
/// let prepared = PreparedProfile::new(&profile);
/// let base = MachineConfig::nehalem();
/// // A 100-point frequency sweep, reduced online: O(1) memory.
/// let grid = frequency_sweep(1.33, 3.99, 100, |f| 0.8 + 0.1 * f);
/// let best = best_ed2p_of(explore_iter(
///     &base,
///     grid,
///     &prepared,
///     &ModelConfig::default(),
/// ))
/// .unwrap();
/// assert!(best.point.frequency_ghz >= 1.33 && best.point.frequency_ghz <= 3.99);
/// ```
pub fn explore_iter<'a>(
    base: &'a MachineConfig,
    points: impl IntoIterator<Item = OperatingPoint> + 'a,
    prepared: &'a PreparedProfile<'a>,
    model_cfg: &'a ModelConfig,
) -> impl Iterator<Item = DvfsOutcome> + 'a {
    // One batched predictor is captured for the whole sweep (the map
    // closure is `FnMut`, so laziness is untouched): operating points
    // share their cache geometry, so the SoA curve queries — and, when no
    // prefetcher rescales with the clock, the stride-MLP walks — memoize
    // across the stream. Bit-identical to the one-point path by the
    // kernel conformance suite.
    let mut batch = BatchPredictor::new(prepared, model_cfg);
    points.into_iter().map(move |point| {
        let machine = machine_at(base, point);
        let prediction = batch.predict_summary(&machine);
        let seconds = prediction.seconds_at(point.frequency_ghz);
        let power = PowerModel::power_of(&machine, &prediction.activity);
        DvfsOutcome {
            point,
            cpi: prediction.cpi(),
            seconds,
            power: power.total(),
            energy: power.energy(seconds),
            edp: power.edp(seconds),
            ed2p: power.ed2p(seconds),
        }
    })
}

/// A lazily generated linear frequency grid: `steps` operating points
/// from `f_lo` to `f_hi` GHz (inclusive), voltage given by `vdd_at`.
/// The DVFS analogue of a [`crate::ProductSpace`] axis — declare a dense
/// sweep in one line, never materialize it.
pub fn frequency_sweep(
    f_lo: f64,
    f_hi: f64,
    steps: usize,
    vdd_at: impl Fn(f64) -> f64,
) -> impl Iterator<Item = OperatingPoint> {
    assert!(steps >= 2, "a sweep needs at least its two endpoints");
    let df = (f_hi - f_lo) / (steps - 1) as f64;
    (0..steps).map(move |i| {
        let f = f_lo + df * i as f64;
        OperatingPoint::new(f, vdd_at(f))
    })
}

/// The operating point minimizing ED²P.
pub fn best_ed2p(outcomes: &[DvfsOutcome]) -> Option<&DvfsOutcome> {
    outcomes
        .iter()
        .min_by(|a, b| a.ed2p.partial_cmp(&b.ed2p).unwrap())
}

/// Online ED²P minimization over any outcome stream (ties keep the
/// earliest outcome, matching [`best_ed2p`]).
pub fn best_ed2p_of(outcomes: impl IntoIterator<Item = DvfsOutcome>) -> Option<DvfsOutcome> {
    outcomes
        .into_iter()
        .reduce(|best, o| if o.ed2p < best.ed2p { o } else { best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmt_profiler::{Profiler, ProfilerConfig};
    use pmt_uarch::nehalem_dvfs_points;
    use pmt_workloads::WorkloadSpec;

    fn profile(name: &str) -> ApplicationProfile {
        let spec = WorkloadSpec::by_name(name).unwrap();
        Profiler::new(ProfilerConfig::fast_test()).profile_named(name, &mut spec.trace(30_000))
    }

    #[test]
    fn memory_latency_scales_with_clock() {
        let base = MachineConfig::nehalem();
        let fast = machine_at(&base, OperatingPoint::new(5.32, 1.3));
        assert_eq!(fast.mem.dram_latency, 400);
        let slow = machine_at(&base, OperatingPoint::new(1.33, 0.9));
        assert_eq!(slow.mem.dram_latency, 100);
    }

    #[test]
    fn higher_frequency_is_faster_but_hotter() {
        let base = MachineConfig::nehalem();
        let p = profile("hmmer");
        let out = explore(&base, &nehalem_dvfs_points(), &p, &ModelConfig::default());
        assert_eq!(out.len(), 5);
        let slowest = &out[0];
        let fastest = out.last().unwrap();
        assert!(fastest.seconds < slowest.seconds);
        assert!(fastest.power > slowest.power);
    }

    #[test]
    fn memory_bound_workload_gains_less_from_frequency() {
        let base = MachineConfig::nehalem();
        let out_mem = explore(
            &base,
            &nehalem_dvfs_points(),
            &profile("milc"),
            &ModelConfig::default(),
        );
        let out_cpu = explore(
            &base,
            &nehalem_dvfs_points(),
            &profile("hmmer"),
            &ModelConfig::default(),
        );
        let speedup = |o: &[DvfsOutcome]| o[0].seconds / o.last().unwrap().seconds;
        assert!(
            speedup(&out_cpu) > speedup(&out_mem),
            "cpu-bound {} vs mem-bound {}",
            speedup(&out_cpu),
            speedup(&out_mem)
        );
    }

    #[test]
    fn explore_iter_is_lazy_and_matches_explore() {
        let base = MachineConfig::nehalem();
        let p = profile("gcc");
        let cfg = ModelConfig::default();
        let eager = explore(&base, &nehalem_dvfs_points(), &p, &cfg);
        let prepared = PreparedProfile::new(&p);
        let lazy: Vec<DvfsOutcome> =
            explore_iter(&base, nehalem_dvfs_points(), &prepared, &cfg).collect();
        assert_eq!(lazy.len(), eager.len());
        for (a, b) in lazy.iter().zip(&eager) {
            assert_eq!(a.cpi.to_bits(), b.cpi.to_bits());
            assert_eq!(a.ed2p.to_bits(), b.ed2p.to_bits());
        }
        // Online reduction equals the materialized argmin.
        let best = best_ed2p_of(explore_iter(&base, nehalem_dvfs_points(), &prepared, &cfg));
        assert_eq!(
            best.unwrap().ed2p.to_bits(),
            best_ed2p(&eager).unwrap().ed2p.to_bits()
        );
    }

    #[test]
    fn frequency_sweep_spans_the_grid() {
        let pts: Vec<OperatingPoint> = frequency_sweep(1.0, 2.0, 5, |f| f / 2.0).collect();
        assert_eq!(pts.len(), 5);
        assert!((pts[0].frequency_ghz - 1.0).abs() < 1e-12);
        assert!((pts[4].frequency_ghz - 2.0).abs() < 1e-12);
        assert!((pts[2].vdd - 0.75).abs() < 1e-12);
    }

    #[test]
    fn best_ed2p_is_an_interior_or_boundary_point() {
        let base = MachineConfig::nehalem();
        let out = explore(
            &base,
            &nehalem_dvfs_points(),
            &profile("gcc"),
            &ModelConfig::default(),
        );
        let best = best_ed2p(&out).unwrap();
        assert!(out.iter().all(|o| best.ed2p <= o.ed2p));
    }
}

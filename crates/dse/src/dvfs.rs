//! DVFS exploration (thesis §7.3, Table 7.2, Fig 7.3).
//!
//! Changing the clock changes memory latency *in cycles* (DRAM
//! nanoseconds are fixed), so every operating point gets a rescaled
//! machine description before the model runs.

use pmt_core::{IntervalModel, ModelConfig, PreparedProfile};
use pmt_power::PowerModel;
use pmt_profiler::ApplicationProfile;
use pmt_uarch::{MachineConfig, OperatingPoint};
use serde::{Deserialize, Serialize};

/// One evaluated operating point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DvfsOutcome {
    /// The operating point.
    pub point: OperatingPoint,
    /// Predicted CPI at this point.
    pub cpi: f64,
    /// Execution time in seconds.
    pub seconds: f64,
    /// Total power in watts.
    pub power: f64,
    /// Energy in joules.
    pub energy: f64,
    /// Energy-delay product.
    pub edp: f64,
    /// Energy-delay-squared product (the thesis' metric).
    pub ed2p: f64,
}

/// Rescale a machine description to an operating point: clock, voltage
/// and the memory-subsystem latencies expressed in core cycles.
pub fn machine_at(base: &MachineConfig, point: OperatingPoint) -> MachineConfig {
    let mut m = base.clone();
    let scale = point.frequency_ghz / base.core.frequency_ghz;
    m.core.frequency_ghz = point.frequency_ghz;
    m.core.vdd = point.vdd;
    m.mem.dram_latency = ((base.mem.dram_latency as f64) * scale).round().max(1.0) as u32;
    m.mem.bus_transfer_cycles = ((base.mem.bus_transfer_cycles as f64) * scale)
        .round()
        .max(1.0) as u32;
    m.name = format!("{}@{:.2}GHz", base.name, point.frequency_ghz);
    m
}

/// Evaluate a profile across operating points (prepared once; every
/// operating point reuses the same machine-independent fits).
pub fn explore(
    base: &MachineConfig,
    points: &[OperatingPoint],
    profile: &ApplicationProfile,
    model_cfg: &ModelConfig,
) -> Vec<DvfsOutcome> {
    let prepared = PreparedProfile::new(profile);
    points
        .iter()
        .map(|&point| {
            let machine = machine_at(base, point);
            let prediction =
                IntervalModel::with_config(&machine, model_cfg.clone()).predict_summary(&prepared);
            let seconds = prediction.seconds_at(point.frequency_ghz);
            let power = PowerModel::new(&machine).power(&prediction.activity);
            DvfsOutcome {
                point,
                cpi: prediction.cpi(),
                seconds,
                power: power.total(),
                energy: power.energy(seconds),
                edp: power.edp(seconds),
                ed2p: power.ed2p(seconds),
            }
        })
        .collect()
}

/// The operating point minimizing ED²P.
pub fn best_ed2p(outcomes: &[DvfsOutcome]) -> Option<&DvfsOutcome> {
    outcomes
        .iter()
        .min_by(|a, b| a.ed2p.partial_cmp(&b.ed2p).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmt_profiler::{Profiler, ProfilerConfig};
    use pmt_uarch::nehalem_dvfs_points;
    use pmt_workloads::WorkloadSpec;

    fn profile(name: &str) -> ApplicationProfile {
        let spec = WorkloadSpec::by_name(name).unwrap();
        Profiler::new(ProfilerConfig::fast_test()).profile_named(name, &mut spec.trace(30_000))
    }

    #[test]
    fn memory_latency_scales_with_clock() {
        let base = MachineConfig::nehalem();
        let fast = machine_at(&base, OperatingPoint::new(5.32, 1.3));
        assert_eq!(fast.mem.dram_latency, 400);
        let slow = machine_at(&base, OperatingPoint::new(1.33, 0.9));
        assert_eq!(slow.mem.dram_latency, 100);
    }

    #[test]
    fn higher_frequency_is_faster_but_hotter() {
        let base = MachineConfig::nehalem();
        let p = profile("hmmer");
        let out = explore(&base, &nehalem_dvfs_points(), &p, &ModelConfig::default());
        assert_eq!(out.len(), 5);
        let slowest = &out[0];
        let fastest = out.last().unwrap();
        assert!(fastest.seconds < slowest.seconds);
        assert!(fastest.power > slowest.power);
    }

    #[test]
    fn memory_bound_workload_gains_less_from_frequency() {
        let base = MachineConfig::nehalem();
        let out_mem = explore(
            &base,
            &nehalem_dvfs_points(),
            &profile("milc"),
            &ModelConfig::default(),
        );
        let out_cpu = explore(
            &base,
            &nehalem_dvfs_points(),
            &profile("hmmer"),
            &ModelConfig::default(),
        );
        let speedup = |o: &[DvfsOutcome]| o[0].seconds / o.last().unwrap().seconds;
        assert!(
            speedup(&out_cpu) > speedup(&out_mem),
            "cpu-bound {} vs mem-bound {}",
            speedup(&out_cpu),
            speedup(&out_mem)
        );
    }

    #[test]
    fn best_ed2p_is_an_interior_or_boundary_point() {
        let base = MachineConfig::nehalem();
        let out = explore(
            &base,
            &nehalem_dvfs_points(),
            &profile("gcc"),
            &ModelConfig::default(),
        );
        let best = best_ed2p(&out).unwrap();
        assert!(out.iter().all(|o| best.ed2p <= o.ed2p));
    }
}

//! Streaming design-space sweeps: predict millions of points, keep
//! what matters, in bounded memory.
//!
//! [`SpaceEvaluation`](crate::SpaceEvaluation) materializes every
//! [`PointOutcome`](crate::PointOutcome) in a `Vec`, which caps the space
//! size by memory rather than compute. [`StreamingSweep`] removes the cap:
//! points come from a [`LazyDesignSpace`] one index at a time, each
//! prepared-profile prediction is folded into **online accumulators** —
//! an incremental Pareto frontier
//! ([`ParetoAccumulator`](crate::ParetoAccumulator)), a bounded-heap
//! top-K ([`TopK`]) and streaming moments ([`Moments`]) — and nothing
//! proportional to the space survives the fold.
//!
//! # Determinism
//!
//! The stream is processed in fixed chunks of
//! [`chunk`](StreamingSweep::chunk) indices. Every chunk folds its points
//! sequentially in index order; chunk summaries merge **in chunk order**.
//! The serial and rayon-parallel paths run the identical chunk tree, so
//! their results are bit-identical by construction — the same guarantee
//! the materializing sweeps make, kept through the fold. The frontier and
//! top-K are additionally order-independent *sets* (strict dominance is
//! transitive; top-K uses the strict total order (key, id)), reported in
//! a fixed sort order.
//!
//! Each chunk's predictions run through the **batched kernels** by
//! default: one [`BatchPredictor`] per chunk answers every admitted
//! point's summary (SoA curve queries, cross-point memoization), and the
//! per-point CPI/seconds arithmetic is evaluated over f64
//! [`lanes`](pmt_core::kernels::lanes). Both are bit-identical to the
//! one-point-at-a-time path — pinned by `pmt-core`'s conformance suite
//! and this module's own equivalence test — so
//! [`per_point`](StreamingSweep::per_point) changes speed, never bytes.
//!
//! ```
//! use pmt_dse::{Objective, StreamingSweep};
//! use pmt_profiler::{Profiler, ProfilerConfig};
//! use pmt_uarch::DesignSpace;
//! use pmt_workloads::WorkloadSpec;
//!
//! let spec = WorkloadSpec::by_name("astar").unwrap();
//! let profile =
//!     Profiler::new(ProfilerConfig::fast_test()).profile_named("astar", &mut spec.trace(20_000));
//! let summary = StreamingSweep::new(&profile)
//!     .objective(Objective::Energy)
//!     .top_k(3)
//!     .run(&DesignSpace::small());
//! assert_eq!(summary.evaluated, 32);
//! assert!(!summary.frontier.is_empty());
//! assert_eq!(summary.top.len(), 3);
//! // The moments cover every evaluated point exactly.
//! assert_eq!(summary.cpi.n, 32);
//! ```

use crate::constrain::DesignConstraints;
use crate::pareto::{FrontEntry, ParetoAccumulator};
use crate::space::LazyDesignSpace;
use pmt_core::kernels::lanes;
use pmt_core::{BatchPredictor, IntervalModel, ModelConfig, Moments, PreparedProfile};
use pmt_power::PowerModel;
use pmt_profiler::ApplicationProfile;
use pmt_uarch::DesignPoint;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Default points per fold chunk. Part of the determinism contract: a
/// sharded sweep only merges bit-identically with a single-process run
/// when both used the same chunk size, so snapshots record it and
/// [`merge_shards`] validates it.
pub const DEFAULT_CHUNK: usize = 1024;

/// One streamed model evaluation: the per-point record the accumulators
/// fold. Deliberately `Copy` and name-free — a million-point sweep must
/// not clone a workload `String` per point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamPoint {
    /// Dense design id within the swept space.
    pub design_id: usize,
    /// Model-predicted CPI.
    pub cpi: f64,
    /// Model-predicted execution seconds.
    pub seconds: f64,
    /// Model-predicted total power (W).
    pub power: f64,
}

impl StreamPoint {
    /// (delay, power) coordinates for Pareto analysis.
    pub fn coords(&self) -> (f64, f64) {
        (self.seconds, self.power)
    }

    /// Energy in joules (power × delay).
    pub fn energy(&self) -> f64 {
        self.power * self.seconds
    }

    /// Energy-delay product.
    pub fn edp(&self) -> f64 {
        self.energy() * self.seconds
    }

    /// Energy-delay-squared product (the thesis' DVFS metric).
    pub fn ed2p(&self) -> f64 {
        self.edp() * self.seconds
    }
}

/// The scalar a [`TopK`] ranks streamed points by — smaller is better.
#[derive(Clone, Copy, Debug)]
pub enum Objective {
    /// Execution time.
    Seconds,
    /// Cycles per instruction.
    Cpi,
    /// Total power.
    Power,
    /// Energy (power × delay).
    Energy,
    /// Energy-delay product.
    Edp,
    /// Energy-delay-squared product.
    Ed2p,
    /// Any user-defined key over the streamed point.
    Custom(fn(&StreamPoint) -> f64),
}

impl Objective {
    /// The ranking key for one point.
    pub fn key(&self, p: &StreamPoint) -> f64 {
        match self {
            Objective::Seconds => p.seconds,
            Objective::Cpi => p.cpi,
            Objective::Power => p.power,
            Objective::Energy => p.energy(),
            Objective::Edp => p.edp(),
            Objective::Ed2p => p.ed2p(),
            Objective::Custom(f) => f(p),
        }
    }

    /// Parse a CLI-style name (`seconds|cpi|power|energy|edp|ed2p`).
    pub fn from_name(name: &str) -> Option<Objective> {
        Some(match name {
            "seconds" => Objective::Seconds,
            "cpi" => Objective::Cpi,
            "power" => Objective::Power,
            "energy" => Objective::Energy,
            "edp" => Objective::Edp,
            "ed2p" => Objective::Ed2p,
            _ => return None,
        })
    }

    /// Short label for tables and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Objective::Seconds => "seconds",
            Objective::Cpi => "cpi",
            Objective::Power => "power",
            Objective::Energy => "energy",
            Objective::Edp => "edp",
            Objective::Ed2p => "ed2p",
            Objective::Custom(_) => "custom",
        }
    }
}

/// One ranked survivor of a [`TopK`] fold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankedEntry<T> {
    /// The objective key (smaller is better).
    pub key: f64,
    /// Dense design id (ties on `key` break toward the smaller id).
    pub id: usize,
    /// Caller payload.
    pub item: T,
}

// The vendored serde derive does not handle generics; these mirror what
// it would generate for the concrete fields.
impl<T: Serialize> Serialize for RankedEntry<T> {
    fn to_json(&self, out: &mut String) {
        out.push('{');
        out.push_str("\"key\":");
        self.key.to_json(out);
        out.push_str(",\"id\":");
        self.id.to_json(out);
        out.push_str(",\"item\":");
        self.item.to_json(out);
        out.push('}');
    }
}

impl<T: Deserialize> Deserialize for RankedEntry<T> {
    fn from_json(p: &mut serde::json::Parser<'_>) -> Result<Self, serde::json::Error> {
        let mut key = None;
        let mut id = None;
        let mut item = None;
        p.object_start()?;
        while let Some(k) = p.next_key()? {
            match k.as_str() {
                "key" => key = Some(Deserialize::from_json(p)?),
                "id" => id = Some(Deserialize::from_json(p)?),
                "item" => item = Some(Deserialize::from_json(p)?),
                _ => p.skip_value()?,
            }
        }
        Ok(RankedEntry {
            key: key.ok_or_else(|| serde::json::Error::missing("key"))?,
            id: id.ok_or_else(|| serde::json::Error::missing("id"))?,
            item: item.ok_or_else(|| serde::json::Error::missing("item"))?,
        })
    }
}

impl<T> RankedEntry<T> {
    fn cmp_rank(&self, other: &Self) -> Ordering {
        self.key.total_cmp(&other.key).then(self.id.cmp(&other.id))
    }
}

/// A bounded min-set: keeps the K smallest entries of a stream under the
/// strict total order (key, id), in a max-heap so each offer costs
/// O(log K). The kept *set* is order-independent, so sharded folds
/// [`merge`](TopK::merge) exactly;
/// [`into_sorted`](TopK::into_sorted) reports ascending.
///
/// ```
/// use pmt_dse::TopK;
///
/// let mut best = TopK::new(2);
/// for (id, key) in [(0, 3.0), (1, 1.0), (2, 2.0), (3, 0.5)] {
///     best.push(key, id, ());
/// }
/// let kept: Vec<usize> = best.into_sorted().iter().map(|e| e.id).collect();
/// assert_eq!(kept, vec![3, 1]);
/// ```
#[derive(Clone, Debug)]
pub struct TopK<T> {
    k: usize,
    heap: BinaryHeap<HeapSlot<T>>,
}

/// Heap adapter ordering [`RankedEntry`]s as a max-heap on (key, id).
#[derive(Clone, Debug)]
struct HeapSlot<T>(RankedEntry<T>);

impl<T> PartialEq for HeapSlot<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.cmp_rank(&other.0) == Ordering::Equal
    }
}
impl<T> Eq for HeapSlot<T> {}
impl<T> PartialOrd for HeapSlot<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapSlot<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp_rank(&other.0)
    }
}

impl<T> TopK<T> {
    /// Keep the `k` smallest (a `k` of 0 keeps nothing).
    pub fn new(k: usize) -> TopK<T> {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(1 << 20)),
        }
    }

    /// Offer one entry; returns whether it is (currently) kept.
    pub fn push(&mut self, key: f64, id: usize, item: T) -> bool {
        if self.k == 0 {
            return false;
        }
        let entry = RankedEntry { key, id, item };
        if self.heap.len() < self.k {
            self.heap.push(HeapSlot(entry));
            return true;
        }
        let worst = self.heap.peek().expect("k > 0");
        if entry.cmp_rank(&worst.0) == Ordering::Less {
            self.heap.pop();
            self.heap.push(HeapSlot(entry));
            true
        } else {
            false
        }
    }

    /// Merge another fold of the same `k` in.
    ///
    /// # Panics
    ///
    /// Panics if the two folds keep different `k`s — merging a top-3 into
    /// a top-5 would silently report a set that is neither, so mismatched
    /// shards fail loudly instead.
    pub fn merge(&mut self, other: TopK<T>) {
        assert_eq!(
            self.k, other.k,
            "TopK::merge requires equal k (left keeps {}, right keeps {})",
            self.k, other.k
        );
        for slot in other.heap {
            self.push(slot.0.key, slot.0.id, slot.0.item);
        }
    }

    /// The `k` this fold keeps.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entries currently kept (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consume into the kept entries, best (smallest key) first.
    pub fn into_sorted(self) -> Vec<RankedEntry<T>> {
        let mut entries: Vec<RankedEntry<T>> = self.heap.into_iter().map(|s| s.0).collect();
        entries.sort_by(|a, b| a.cmp_rank(b));
        entries
    }
}

impl<T: Clone> TopK<T> {
    /// Borrowing form of [`into_sorted`](Self::into_sorted): the kept
    /// entries sorted ascending on (key, id), with the heap left intact.
    /// Sorting before encoding is what makes shard snapshots canonical —
    /// the heap's internal layout depends on push order, the sorted set
    /// does not.
    pub fn sorted_entries(&self) -> Vec<RankedEntry<T>> {
        let mut entries: Vec<RankedEntry<T>> = self.heap.iter().map(|s| s.0.clone()).collect();
        entries.sort_by(|a, b| a.cmp_rank(b));
        entries
    }
}

/// The bounded result of a [`StreamingSweep`]: frontier, top-K and
/// moments — never the per-point outcomes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamingSummary {
    /// Size of the swept space (admitted + rejected).
    pub space_points: usize,
    /// Points that passed the pre-filter and were predicted.
    pub evaluated: usize,
    /// Points rejected by the cheap pre-filter *before* prediction.
    pub rejected: usize,
    /// Predicted points excluded from frontier/top-K by the post-filter
    /// budgets (`max_power_w` / `max_seconds`). Still counted in the
    /// moments, which summarize every *evaluated* point.
    pub over_budget: usize,
    /// The Pareto frontier over (seconds, power), sorted by design id.
    pub frontier: Vec<FrontEntry<StreamPoint>>,
    /// The K best points by the sweep objective, best first.
    pub top: Vec<RankedEntry<StreamPoint>>,
    /// CPI moments over every evaluated point.
    pub cpi: Moments,
    /// Power moments over every evaluated point.
    pub power: Moments,
    /// Execution-time moments over every evaluated point.
    pub seconds: Moments,
}

impl StreamingSummary {
    /// Frontier design ids (ascending).
    pub fn frontier_ids(&self) -> Vec<usize> {
        self.frontier.iter().map(|e| e.id).collect()
    }

    /// Frontier (delay, power) coordinates, in id order.
    pub fn frontier_coords(&self) -> Vec<(f64, f64)> {
        self.frontier.iter().map(|e| e.coords).collect()
    }
}

/// One chunk's worth of accumulators — the unit the parallel fold
/// computes independently and merges in chunk order.
struct ChunkFold {
    pareto: ParetoAccumulator<StreamPoint>,
    top: TopK<StreamPoint>,
    cpi: Moments,
    power: Moments,
    seconds: Moments,
    evaluated: usize,
    rejected: usize,
    over_budget: usize,
}

impl ChunkFold {
    fn new(k: usize) -> ChunkFold {
        ChunkFold {
            pareto: ParetoAccumulator::new(),
            top: TopK::new(k),
            cpi: Moments::new(),
            power: Moments::new(),
            seconds: Moments::new(),
            evaluated: 0,
            rejected: 0,
            over_budget: 0,
        }
    }

    fn merge(&mut self, other: ChunkFold) {
        self.pareto.merge(other.pareto);
        self.top.merge(other.top);
        self.cpi.merge(&other.cpi);
        self.power.merge(&other.power);
        self.seconds.merge(&other.seconds);
        self.evaluated += other.evaluated;
        self.rejected += other.rejected;
        self.over_budget += other.over_budget;
    }
}

/// A memory-bounded design-space sweep: lazy points in, online
/// accumulators out. Model-only by construction (simulated ground truth
/// belongs to the materializing [`SweepBuilder`](crate::SweepBuilder) /
/// validation paths, which need every outcome anyway).
pub struct StreamingSweep<'a> {
    profile: &'a ApplicationProfile,
    model: ModelConfig,
    prefilter: Option<DesignConstraints>,
    max_power_w: Option<f64>,
    max_seconds: Option<f64>,
    top_k: usize,
    objective: Objective,
    chunk: usize,
    serial: bool,
    per_point: bool,
}

impl<'a> StreamingSweep<'a> {
    /// A sweep of `profile` with defaults: no filters, top-10 by
    /// [`Objective::Seconds`], 1024-point chunks, rayon-parallel.
    pub fn new(profile: &'a ApplicationProfile) -> StreamingSweep<'a> {
        StreamingSweep {
            profile,
            model: ModelConfig::default(),
            prefilter: None,
            max_power_w: None,
            max_seconds: None,
            top_k: 10,
            objective: Objective::Seconds,
            chunk: DEFAULT_CHUNK,
            serial: false,
            per_point: false,
        }
    }

    /// Replace the model configuration.
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Reject points failing `constraints` *before* prediction (cheap
    /// machine-description checks — see
    /// [`DesignConstraints`](crate::constrain::DesignConstraints)).
    pub fn constraints(mut self, constraints: DesignConstraints) -> Self {
        self.prefilter = Some(constraints);
        self
    }

    /// Exclude predicted points above this power from frontier and
    /// top-K (they still count toward the moments).
    pub fn max_power_w(mut self, watts: f64) -> Self {
        self.max_power_w = Some(watts);
        self
    }

    /// Exclude predicted points slower than this from frontier and
    /// top-K.
    pub fn max_seconds(mut self, seconds: f64) -> Self {
        self.max_seconds = Some(seconds);
        self
    }

    /// Keep the `k` best points by the sweep objective.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Rank top-K candidates by `objective` (smaller is better).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Points per fold chunk. Part of the determinism contract: the same
    /// chunk size produces bit-identical results serial or parallel, but
    /// *different* chunk sizes may round moment sums differently.
    ///
    /// # Panics
    ///
    /// Panics on a chunk size of zero.
    pub fn chunk(mut self, points: usize) -> Self {
        assert!(points > 0, "chunk size must be positive");
        self.chunk = points;
        self
    }

    /// Force the sequential path (for measurement and equivalence tests).
    pub fn serial(mut self) -> Self {
        self.serial = true;
        self
    }

    /// Evaluate one design point at a time instead of through the
    /// batched kernels. Bit-identical to the default batched path (the
    /// kernels replicate the scalar arithmetic exactly) — this exists
    /// for measurement baselines and equivalence tests, not correctness.
    pub fn per_point(mut self) -> Self {
        self.per_point = true;
        self
    }

    /// Prepare the profile once, stream every point of `space` through
    /// the accumulators, and return the bounded summary.
    pub fn run<S: LazyDesignSpace + ?Sized>(&self, space: &S) -> StreamingSummary {
        let prepared = PreparedProfile::new(self.profile);
        self.run_prepared(&prepared, space)
    }

    /// [`run`](Self::run) with an already-prepared profile — the hot path
    /// for callers (like a long-running service) that hold a
    /// [`PreparedProfile`] across many sweeps. `prepared` must derive
    /// from the same profile this sweep was built over.
    pub fn run_prepared<S: LazyDesignSpace + ?Sized>(
        &self,
        prepared: &PreparedProfile<'_>,
        space: &S,
    ) -> StreamingSummary {
        let n = space.len();
        // `step_by` never overflows: every yielded start is a valid index
        // below `n`, and the final increment saturates inside the iterator.
        let starts: Vec<usize> = (0..n).step_by(self.chunk).collect();
        // Identical chunk tree on both paths: fold chunks (serially or in
        // parallel), then merge the chunk summaries in chunk order.
        let folded: Vec<ChunkFold> = if self.serial {
            starts
                .iter()
                .map(|&s| self.fold_chunk(prepared, space, s, n))
                .collect()
        } else {
            starts
                .par_iter()
                .map(|&s| self.fold_chunk(prepared, space, s, n))
                .collect()
        };
        let mut total = ChunkFold::new(self.top_k);
        for chunk in folded {
            total.merge(chunk);
        }
        StreamingSummary {
            space_points: n,
            evaluated: total.evaluated,
            rejected: total.rejected,
            over_budget: total.over_budget,
            frontier: total.pareto.into_sorted(),
            top: total.top.into_sorted(),
            cpi: total.cpi,
            power: total.power,
            seconds: total.seconds,
        }
    }

    /// Fold one chunk of `[start, start + chunk) ∩ [0, n)` — the shared
    /// unit of work of [`run_prepared`](Self::run_prepared) and
    /// [`run_shard_prepared`](Self::run_shard_prepared), so a sharded run
    /// computes the exact same per-chunk accumulators a single-process
    /// run does.
    fn fold_chunk<S: LazyDesignSpace + ?Sized>(
        &self,
        prepared: &PreparedProfile<'_>,
        space: &S,
        start: usize,
        n: usize,
    ) -> ChunkFold {
        // Saturate rather than wrap: near usize::MAX the naive
        // `start + chunk` would overflow and fold an empty (or wrong)
        // range in release builds.
        let end = start.saturating_add(self.chunk).min(n);
        let mut acc = ChunkFold::new(self.top_k);
        if self.per_point {
            for index in start..end {
                let point = space.point_at(index);
                if let Some(c) = &self.prefilter {
                    if !c.admits(&point) {
                        acc.rejected += 1;
                        continue;
                    }
                }
                let p = evaluate_stream_point(&point, prepared, &self.model);
                self.fold_point(&mut acc, p);
            }
            return acc;
        }
        // The batched path: materialize the chunk's admitted points in
        // index order, then evaluate them together through the batched
        // kernels. The fold below runs in the same index order as the
        // per-point loop above, so the two paths are bit-identical.
        let mut points: Vec<DesignPoint> = Vec::with_capacity(end - start);
        for index in start..end {
            let point = space.point_at(index);
            if let Some(c) = &self.prefilter {
                if !c.admits(&point) {
                    acc.rejected += 1;
                    continue;
                }
            }
            points.push(point);
        }
        for p in evaluate_stream_points_batched(&points, prepared, &self.model) {
            self.fold_point(&mut acc, p);
        }
        acc
    }

    /// Fold one predicted point into a chunk's accumulators — shared by
    /// the per-point and batched halves of
    /// [`fold_chunk`](Self::fold_chunk) so the two paths cannot drift.
    fn fold_point(&self, acc: &mut ChunkFold, p: StreamPoint) {
        acc.evaluated += 1;
        acc.cpi.push(p.cpi);
        acc.power.push(p.power);
        acc.seconds.push(p.seconds);
        if self.max_power_w.is_some_and(|w| p.power > w)
            || self.max_seconds.is_some_and(|s| p.seconds > s)
        {
            acc.over_budget += 1;
            return;
        }
        acc.pareto.push(p.design_id, p.coords(), p);
        acc.top.push(self.objective.key(&p), p.design_id, p);
    }

    /// Fold only shard `shard_index` of `shard_count`'s contiguous range
    /// of the **global** chunk list, optionally resuming from a prior
    /// [`ShardAccumulators`] checkpoint.
    ///
    /// The global chunk list is the one [`run_prepared`](Self::run_prepared)
    /// folds — `(0..space.len()).step_by(chunk)` — and shard `i` owns
    /// chunks `[i·C/s, (i+1)·C/s)` of its `C` chunks, so concatenating
    /// the shards in shard order replays the single-process fold exactly.
    ///
    /// `on_checkpoint` is invoked with the running snapshot after every
    /// `checkpoint_every` completed chunks (`0` disables intermediate
    /// checkpoints); the final, complete snapshot is returned. Chunks
    /// within a checkpoint batch fold in parallel (unless
    /// [`serial`](Self::serial)), merged in chunk order as always.
    ///
    /// # Panics
    ///
    /// Panics if `shard_index >= shard_count`, `shard_count == 0`, or a
    /// `resume` snapshot's geometry (space size, chunk size, chunk range,
    /// top-k) does not match this sweep and shard.
    // Each argument is an independent caller decision (what to fold,
    // where, from which checkpoint, how often); bundling them into a
    // one-use options struct would only move the list.
    #[allow(clippy::too_many_arguments)]
    pub fn run_shard_prepared<S: LazyDesignSpace + ?Sized>(
        &self,
        prepared: &PreparedProfile<'_>,
        space: &S,
        shard_index: usize,
        shard_count: usize,
        resume: Option<&ShardAccumulators>,
        checkpoint_every: usize,
        mut on_checkpoint: impl FnMut(&ShardAccumulators),
    ) -> ShardAccumulators {
        assert!(shard_count > 0, "shard_count must be positive");
        assert!(
            shard_index < shard_count,
            "shard index {shard_index} out of range for {shard_count} shards"
        );
        let n = space.len();
        let total = chunk_count(n, self.chunk);
        let (lo, hi) = shard_chunk_range(total, shard_index, shard_count);
        let mut acc = match resume {
            Some(r) => {
                assert_eq!(
                    (r.space_points, r.chunk, r.chunk_lo, r.chunk_hi, r.top_k),
                    (n, self.chunk, lo, hi, self.top_k),
                    "resume snapshot geometry does not match this sweep/shard"
                );
                r.clone()
            }
            None => ShardAccumulators::empty(n, self.chunk, lo, hi, self.top_k),
        };
        // Rebuild the running set accumulators from the snapshot's
        // canonical (sorted) entries. Both are order-independent sets, so
        // a resumed fold converges on the same survivors as an
        // uninterrupted one.
        let mut pareto: ParetoAccumulator<StreamPoint> = ParetoAccumulator::new();
        for e in &acc.frontier {
            pareto.push(e.id, e.coords, e.item);
        }
        let mut top: TopK<StreamPoint> = TopK::new(self.top_k);
        for e in &acc.top {
            top.push(e.key, e.id, e.item);
        }

        let batch = if checkpoint_every == 0 {
            usize::MAX
        } else {
            checkpoint_every
        };
        while acc.chunks_done < hi - lo {
            let next = lo + acc.chunks_done;
            let end = next.saturating_add(batch).min(hi);
            let folds: Vec<ChunkFold> = if self.serial {
                (next..end)
                    .map(|c| self.fold_chunk(prepared, space, c * self.chunk, n))
                    .collect()
            } else {
                (next..end)
                    .into_par_iter()
                    .map(|c| self.fold_chunk(prepared, space, c * self.chunk, n))
                    .collect()
            };
            for f in folds {
                // Keep the per-chunk moments instead of a running total:
                // f64 addition is not associative, so only replaying the
                // global chunk-order fold at merge time can be
                // bit-identical to the single-process run.
                acc.cpi_chunks.push(f.cpi);
                acc.power_chunks.push(f.power);
                acc.seconds_chunks.push(f.seconds);
                acc.evaluated += f.evaluated;
                acc.rejected += f.rejected;
                acc.over_budget += f.over_budget;
                pareto.merge(f.pareto);
                top.merge(f.top);
                acc.chunks_done += 1;
            }
            acc.frontier = pareto.sorted_entries();
            acc.top = top.sorted_entries();
            on_checkpoint(&acc);
        }
        acc
    }
}

/// Number of chunks `run_prepared`'s start list covers `points` with:
/// `⌈points / chunk⌉`.
pub fn chunk_count(points: usize, chunk: usize) -> usize {
    assert!(chunk > 0, "chunk size must be positive");
    if points == 0 {
        0
    } else {
        1 + (points - 1) / chunk
    }
}

/// The contiguous global-chunk range `[lo, hi)` shard `index` of `count`
/// owns: `lo = ⌊index·total/count⌋`, `hi = ⌊(index+1)·total/count⌋`.
/// Computed in 128-bit so `index·total` cannot overflow; the ranges of
/// shards `0..count` tile `[0, total)` exactly.
pub fn shard_chunk_range(total_chunks: usize, index: usize, count: usize) -> (usize, usize) {
    assert!(count > 0, "shard count must be positive");
    assert!(
        index < count,
        "shard index {index} out of range for {count} shards"
    );
    let lo = (index as u128 * total_chunks as u128 / count as u128) as usize;
    let hi = ((index + 1) as u128 * total_chunks as u128 / count as u128) as usize;
    (lo, hi)
}

/// The canonical, deterministic byte form of one shard's accumulator
/// state — what `pmt explore --shard i/n --snapshot-out` writes and
/// [`merge_shards`] folds back together.
///
/// # Canonical form
///
/// Two runs that completed the same chunks hold the same snapshot, byte
/// for byte, regardless of push order, parallelism, or how many times
/// the shard was killed and resumed:
///
/// * `frontier` is the shard-local Pareto set sorted by design id,
/// * `top` is the shard-local top-K set sorted on (key, id) — the heap is
///   never encoded directly, its layout depends on push order,
/// * `*_chunks` hold one [`Moments`] **per completed chunk, in global
///   chunk order** — kept unmerged because f64 addition is not
///   associative: [`merge_shards`] replays the exact single-process
///   chunk-order fold from them,
/// * the geometry fields pin everything the determinism contract depends
///   on (space size, chunk size, owned chunk range, top-k).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardAccumulators {
    /// Size of the full (unsharded) space this shard is a slice of.
    pub space_points: usize,
    /// Fold chunk size — part of the determinism contract.
    pub chunk: usize,
    /// First global chunk index this shard owns.
    pub chunk_lo: usize,
    /// One past the last global chunk index this shard owns.
    pub chunk_hi: usize,
    /// Chunks completed so far: global chunks `[chunk_lo, chunk_lo +
    /// chunks_done)` are folded in. Equal to `chunk_hi - chunk_lo` when
    /// the shard is complete; a resumed run continues here.
    pub chunks_done: usize,
    /// The top-K budget every shard must share.
    pub top_k: usize,
    /// Points predicted so far (within completed chunks).
    pub evaluated: usize,
    /// Points rejected by the pre-filter so far.
    pub rejected: usize,
    /// Predicted points excluded by the post-filter budgets so far.
    pub over_budget: usize,
    /// Shard-local Pareto survivors, sorted by design id.
    pub frontier: Vec<FrontEntry<StreamPoint>>,
    /// Shard-local top-K survivors, sorted on (key, id).
    pub top: Vec<RankedEntry<StreamPoint>>,
    /// CPI moments of each completed chunk, in global chunk order.
    pub cpi_chunks: Vec<Moments>,
    /// Power moments of each completed chunk, in global chunk order.
    pub power_chunks: Vec<Moments>,
    /// Execution-time moments of each completed chunk, in global chunk
    /// order.
    pub seconds_chunks: Vec<Moments>,
}

impl ShardAccumulators {
    /// A fresh shard over global chunks `[lo, hi)` with nothing folded.
    pub fn empty(
        space_points: usize,
        chunk: usize,
        chunk_lo: usize,
        chunk_hi: usize,
        top_k: usize,
    ) -> ShardAccumulators {
        ShardAccumulators {
            space_points,
            chunk,
            chunk_lo,
            chunk_hi,
            chunks_done: 0,
            top_k,
            evaluated: 0,
            rejected: 0,
            over_budget: 0,
            frontier: Vec::new(),
            top: Vec::new(),
            cpi_chunks: Vec::new(),
            power_chunks: Vec::new(),
            seconds_chunks: Vec::new(),
        }
    }

    /// Whether every owned chunk has been folded.
    pub fn is_complete(&self) -> bool {
        self.chunks_done == self.chunk_hi.saturating_sub(self.chunk_lo)
    }
}

/// Fold complete shard snapshots back into the [`StreamingSummary`] a
/// single-process [`StreamingSweep::run_prepared`] over the same space
/// produces — bit-identically.
///
/// The shards are sorted by `chunk_lo` and validated to tile the global
/// chunk range `[0, ⌈space_points/chunk⌉)` exactly with matching
/// geometry; the moments are then replayed through
/// [`Moments::merge`] in global chunk order (the same left fold
/// `run_prepared` performs) while frontier and top-K merge as the
/// order-independent sets they are.
pub fn merge_shards(mut shards: Vec<ShardAccumulators>) -> Result<StreamingSummary, String> {
    let Some(first) = shards.first() else {
        return Err("no shard snapshots to merge".to_string());
    };
    let (space_points, chunk, top_k) = (first.space_points, first.chunk, first.top_k);
    if chunk == 0 {
        return Err("shard snapshot declares a zero chunk size".to_string());
    }
    let total = chunk_count(space_points, chunk);
    // `chunk_hi` breaks ties so an empty shard `[x, x)` (more shards
    // than chunks) sorts before the non-empty `[x, y)` and still
    // satisfies the tiling walk below.
    shards.sort_by_key(|s| (s.chunk_lo, s.chunk_hi));
    let mut expect_lo = 0usize;
    for s in &shards {
        if (s.space_points, s.chunk, s.top_k) != (space_points, chunk, top_k) {
            return Err(format!(
                "shard geometry mismatch: expected (space_points, chunk, top_k) = \
                 ({space_points}, {chunk}, {top_k}), found ({}, {}, {})",
                s.space_points, s.chunk, s.top_k
            ));
        }
        if !s.is_complete() {
            return Err(format!(
                "shard covering chunks {}..{} is incomplete ({} of {} chunks done) — \
                 resume it before merging",
                s.chunk_lo,
                s.chunk_hi,
                s.chunks_done,
                s.chunk_hi.saturating_sub(s.chunk_lo)
            ));
        }
        if s.chunk_lo != expect_lo {
            return Err(format!(
                "shards do not tile the chunk range: expected a shard starting at \
                 chunk {expect_lo}, found chunk {}",
                s.chunk_lo
            ));
        }
        if s.chunk_hi < s.chunk_lo || s.chunk_hi > total {
            return Err(format!(
                "shard chunk range {}..{} is invalid for {total} total chunks",
                s.chunk_lo, s.chunk_hi
            ));
        }
        let owned = s.chunk_hi - s.chunk_lo;
        if s.cpi_chunks.len() != owned
            || s.power_chunks.len() != owned
            || s.seconds_chunks.len() != owned
        {
            return Err(format!(
                "shard covering chunks {}..{} carries {}/{}/{} per-chunk moments, \
                 expected {owned} of each",
                s.chunk_lo,
                s.chunk_hi,
                s.cpi_chunks.len(),
                s.power_chunks.len(),
                s.seconds_chunks.len()
            ));
        }
        expect_lo = s.chunk_hi;
    }
    if expect_lo != total {
        return Err(format!(
            "shards cover chunks 0..{expect_lo} of {total} — the partition is incomplete"
        ));
    }

    // Replay the single-process fold: sets merge order-independently,
    // moments merge in global chunk order (shards are sorted, and each
    // shard's per-chunk lists are already in chunk order).
    let mut pareto: ParetoAccumulator<StreamPoint> = ParetoAccumulator::new();
    let mut top: TopK<StreamPoint> = TopK::new(top_k);
    let mut cpi = Moments::new();
    let mut power = Moments::new();
    let mut seconds = Moments::new();
    let (mut evaluated, mut rejected, mut over_budget) = (0usize, 0usize, 0usize);
    for s in shards {
        for e in &s.frontier {
            pareto.push(e.id, e.coords, e.item);
        }
        for e in &s.top {
            top.push(e.key, e.id, e.item);
        }
        for m in &s.cpi_chunks {
            cpi.merge(m);
        }
        for m in &s.power_chunks {
            power.merge(m);
        }
        for m in &s.seconds_chunks {
            seconds.merge(m);
        }
        evaluated += s.evaluated;
        rejected += s.rejected;
        over_budget += s.over_budget;
    }
    Ok(StreamingSummary {
        space_points,
        evaluated,
        rejected,
        over_budget,
        frontier: pareto.into_sorted(),
        top: top.into_sorted(),
        cpi,
        power,
        seconds,
    })
}

/// One model-only point evaluation — the same arithmetic as the
/// materializing sweep's model half
/// ([`SpaceEvaluation`](crate::SpaceEvaluation)), so streamed and
/// collected results are bit-identical.
pub(crate) fn evaluate_stream_point(
    point: &DesignPoint,
    prepared: &PreparedProfile<'_>,
    model_cfg: &ModelConfig,
) -> StreamPoint {
    let machine = &point.machine;
    let model = IntervalModel::with_config(machine, model_cfg.clone());
    let prediction = model.predict_summary(prepared);
    let power = PowerModel::new(machine).power(&prediction.activity).total();
    StreamPoint {
        design_id: point.id,
        cpi: prediction.cpi(),
        seconds: prediction.seconds_at(machine.core.frequency_ghz),
        power,
    }
}

/// [`evaluate_stream_point`] for a whole slice of points at once, in
/// order — the batched model half the streaming fold and the
/// materializing sweeps share. One [`BatchPredictor`] answers every
/// summary (SoA curve queries, memos shared across the batch); the
/// CPI/seconds arithmetic runs over f64 [`lanes`]. Every step replicates
/// the one-point path exactly (same summaries, per-lane
/// correctly-rounded division and multiplication only), so the returned
/// points are bit-identical to mapping [`evaluate_stream_point`].
pub(crate) fn evaluate_stream_points_batched(
    points: &[DesignPoint],
    prepared: &PreparedProfile<'_>,
    model_cfg: &ModelConfig,
) -> Vec<StreamPoint> {
    let mut batch = BatchPredictor::new(prepared, model_cfg);
    let mut summaries = Vec::with_capacity(points.len());
    batch.predict_batch_into(points.iter().map(|p| &p.machine), &mut summaries);
    let k = points.len();
    let cycles: Vec<f64> = summaries.iter().map(|s| s.cycles).collect();
    let instructions: Vec<f64> = summaries.iter().map(|s| s.instructions as f64).collect();
    let freq_ghz: Vec<f64> = points
        .iter()
        .map(|p| p.machine.core.frequency_ghz)
        .collect();
    let mut cpi = vec![0.0; k];
    let mut hz = vec![0.0; k];
    let mut seconds = vec![0.0; k];
    lanes::div(&cycles, &instructions, &mut cpi);
    lanes::mul_scalar(&freq_ghz, 1e9, &mut hz);
    lanes::div(&cycles, &hz, &mut seconds);
    (0..k)
        .map(|i| StreamPoint {
            design_id: points[i].id,
            // `PredictionSummary::cpi` guards the empty profile.
            cpi: if summaries[i].instructions > 0 {
                cpi[i]
            } else {
                0.0
            },
            seconds: seconds[i],
            power: PowerModel::power_of(&points[i].machine, &summaries[i].activity).total(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::ParetoFront;
    use crate::sweep::{SpaceEvaluation, SweepConfig};
    use pmt_profiler::{Profiler, ProfilerConfig};
    use pmt_uarch::DesignSpace;
    use pmt_workloads::WorkloadSpec;

    fn profile() -> ApplicationProfile {
        let spec = WorkloadSpec::by_name("astar").unwrap();
        Profiler::new(ProfilerConfig::fast_test()).profile_named("astar", &mut spec.trace(30_000))
    }

    #[test]
    fn streaming_matches_materialized_sweep_bit_for_bit() {
        let profile = profile();
        let space = DesignSpace::small();
        let points = space.enumerate();
        let eval = SpaceEvaluation::run_serial(&points, &profile, None, &SweepConfig::default());

        let summary = StreamingSweep::new(&profile)
            .chunk(5) // deliberately not a divisor of 32
            .top_k(4)
            .run(&space);
        assert_eq!(summary.evaluated, 32);
        assert_eq!(summary.rejected, 0);

        // Frontier == the classification of the materialized outcomes.
        let front = ParetoFront::of(&eval.model_points());
        assert_eq!(summary.frontier_ids(), front.indices());
        for e in &summary.frontier {
            let o = &eval.outcomes[e.id];
            assert_eq!(e.coords.0.to_bits(), o.model_seconds.to_bits());
            assert_eq!(e.coords.1.to_bits(), o.model_power.to_bits());
            assert_eq!(e.item.cpi.to_bits(), o.model_cpi.to_bits());
        }

        // Top-K == sorting the materialized outcomes by the objective.
        let mut by_seconds: Vec<(f64, usize)> = eval
            .outcomes
            .iter()
            .map(|o| (o.model_seconds, o.design_id))
            .collect();
        by_seconds.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let expect: Vec<usize> = by_seconds.iter().take(4).map(|&(_, id)| id).collect();
        let got: Vec<usize> = summary.top.iter().map(|e| e.id).collect();
        assert_eq!(got, expect);

        // Moments cover every point with exact extrema.
        assert_eq!(summary.cpi.n, 32);
        let min_cpi = eval
            .outcomes
            .iter()
            .map(|o| o.model_cpi)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(summary.cpi.min.to_bits(), min_cpi.to_bits());
    }

    #[test]
    fn parallel_fold_is_bit_identical_to_serial() {
        let profile = profile();
        let space = DesignSpace::small();
        for chunk in [1, 3, 7, 64] {
            let ser = StreamingSweep::new(&profile)
                .chunk(chunk)
                .serial()
                .run(&space);
            let par = StreamingSweep::new(&profile).chunk(chunk).run(&space);
            assert_eq!(ser.frontier_ids(), par.frontier_ids());
            assert_eq!(
                ser.cpi.sum.to_bits(),
                par.cpi.sum.to_bits(),
                "chunk {chunk}"
            );
            assert_eq!(ser.power.sum.to_bits(), par.power.sum.to_bits());
            assert_eq!(ser.seconds.sum.to_bits(), par.seconds.sum.to_bits());
            let ser_top: Vec<(u64, usize)> =
                ser.top.iter().map(|e| (e.key.to_bits(), e.id)).collect();
            let par_top: Vec<(u64, usize)> =
                par.top.iter().map(|e| (e.key.to_bits(), e.id)).collect();
            assert_eq!(ser_top, par_top);
        }
    }

    #[test]
    fn batched_fold_is_bit_identical_to_per_point() {
        let profile = profile();
        let space = DesignSpace::small();
        for chunk in [1, 3, 5, 64] {
            let batched = StreamingSweep::new(&profile)
                .chunk(chunk)
                .top_k(4)
                .serial()
                .run(&space);
            let scalar = StreamingSweep::new(&profile)
                .chunk(chunk)
                .top_k(4)
                .serial()
                .per_point()
                .run(&space);
            // Byte compare via serde_json: shortest-round-trip floats
            // make equal strings ⇔ equal bits.
            assert_eq!(
                serde_json::to_string(&batched).unwrap(),
                serde_json::to_string(&scalar).unwrap(),
                "chunk {chunk}"
            );
        }
        // Filters interleave identically on both paths.
        let batched = StreamingSweep::new(&profile)
            .constraints(DesignConstraints::new().max_dispatch_width(2))
            .max_power_w(25.0)
            .serial()
            .run(&space);
        let scalar = StreamingSweep::new(&profile)
            .constraints(DesignConstraints::new().max_dispatch_width(2))
            .max_power_w(25.0)
            .serial()
            .per_point()
            .run(&space);
        assert_eq!(
            serde_json::to_string(&batched).unwrap(),
            serde_json::to_string(&scalar).unwrap()
        );
    }

    #[test]
    fn prefilter_rejects_before_prediction_and_budget_after() {
        let profile = profile();
        let space = DesignSpace::small();
        let all = StreamingSweep::new(&profile).run(&space);
        // Pre-filter: only the narrow machines (half the 32-point space).
        let narrow = StreamingSweep::new(&profile)
            .constraints(DesignConstraints::new().max_dispatch_width(2))
            .run(&space);
        assert_eq!(narrow.evaluated + narrow.rejected, 32);
        assert_eq!(narrow.evaluated, 16);
        assert!(narrow
            .frontier
            .iter()
            .all(|e| space.point_at(e.id).machine.core.dispatch_width <= 2));

        // Post-filter: a power budget below the cheapest design empties
        // the frontier but not the moments.
        let capped = StreamingSweep::new(&profile)
            .max_power_w(all.power.min / 2.0)
            .run(&space);
        assert_eq!(capped.over_budget, 32);
        assert!(capped.frontier.is_empty());
        assert!(capped.top.is_empty());
        assert_eq!(capped.cpi.n, 32);
    }

    #[test]
    fn empty_space_yields_an_empty_summary() {
        let profile = profile();
        let summary = StreamingSweep::new(&profile).run(&Vec::<DesignPoint>::new());
        assert_eq!(summary.space_points, 0);
        assert_eq!(summary.evaluated, 0);
        assert!(summary.frontier.is_empty());
        assert!(summary.top.is_empty());
        assert_eq!(summary.cpi.n, 0);
    }

    #[test]
    fn top_k_keeps_the_k_smallest_with_id_tiebreak() {
        let mut top = TopK::new(3);
        top.push(2.0, 5, "a");
        top.push(2.0, 1, "b");
        top.push(1.0, 9, "c");
        top.push(2.0, 0, "d");
        top.push(3.0, 2, "e");
        assert_eq!(top.len(), 3);
        assert!(!top.is_empty());
        let kept = top.into_sorted();
        let ids: Vec<usize> = kept.iter().map(|e| e.id).collect();
        // 1.0 first, then the 2.0 ties by ascending id.
        assert_eq!(ids, vec![9, 0, 1]);
    }

    #[test]
    fn top_k_merge_equals_single_stream() {
        let entries: Vec<(f64, usize)> =
            (0..50).map(|i| (((i * 37) % 23) as f64 * 0.5, i)).collect();
        let mut whole = TopK::new(8);
        for &(k, id) in &entries {
            whole.push(k, id, ());
        }
        let mut a = TopK::new(8);
        let mut b = TopK::new(8);
        for &(k, id) in &entries[..20] {
            a.push(k, id, ());
        }
        for &(k, id) in &entries[20..] {
            b.push(k, id, ());
        }
        b.merge(a); // merge in the "wrong" order on purpose
        let whole_ids: Vec<usize> = whole.into_sorted().iter().map(|e| e.id).collect();
        let merged_ids: Vec<usize> = b.into_sorted().iter().map(|e| e.id).collect();
        assert_eq!(whole_ids, merged_ids);
    }

    #[test]
    fn zero_k_keeps_nothing() {
        let mut top = TopK::new(0);
        assert!(!top.push(1.0, 0, ()));
        assert!(top.is_empty());
        assert!(top.into_sorted().is_empty());
    }

    #[test]
    fn objective_names_round_trip() {
        for name in ["seconds", "cpi", "power", "energy", "edp", "ed2p"] {
            let o = Objective::from_name(name).unwrap();
            assert_eq!(o.label(), name);
        }
        assert!(Objective::from_name("joules").is_none());
        let p = StreamPoint {
            design_id: 0,
            cpi: 2.0,
            seconds: 3.0,
            power: 5.0,
        };
        assert_eq!(Objective::Energy.key(&p), 15.0);
        assert_eq!(Objective::Edp.key(&p), 45.0);
        assert_eq!(Objective::Ed2p.key(&p), 135.0);
        assert_eq!(Objective::Custom(|p| p.cpi * 2.0).key(&p), 4.0);
        assert_eq!(Objective::Custom(|p| p.cpi).label(), "custom");
    }
}

#!/usr/bin/env python3
"""CI gate for the learned residual corrector (stdlib only).

Reads two ValidationReport JSON files from the same grid — one plain
analytical run and one run with ``--corrector`` — plus the trained
corrector artifact, and asserts the contract the fused layer makes:

1. the corrected run's analytical section is untouched (byte-comparable
   field by field: correction is strictly post-fold);
2. fused mean |CPI error| <= analytical mean |CPI error| — pooled and
   per workload;
3. Spearman rank correlation is not degraded: per-workload fused rho >=
   analytical rho - epsilon, and the mean rank delta is >= 0;
4. the fused section's corrector metadata matches the artifact that was
   applied (seed, lambda, split sizes, schema version).

Exit code 0 on success; any violated gate raises with a message naming
the offending number.
"""

import argparse
import json
import sys

# Per-workload Spearman may wobble by a hair on a tiny smoke grid; the
# mean delta must still be >= 0 (correction helps overall, never hurts).
RHO_EPSILON = 0.02


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--analytical", required=True, help="plain validate --out report")
    ap.add_argument("--fused", required=True, help="validate --corrector --out report")
    ap.add_argument("--corrector", required=True, help="pmt train --out artifact")
    args = ap.parse_args()

    plain = load(args.analytical)
    fused_report = load(args.fused)
    artifact = load(args.corrector)

    assert plain.get("fused") is None, "the analytical report must not carry a fused section"
    fused = fused_report.get("fused")
    assert fused, "the corrected report carries no fused section"

    # Gate 1: correction is post-fold — the analytical columns of both
    # reports are identical (same grid, warm cache on both runs keeps the
    # cache section comparable too, but compare the model columns only so
    # the gate doesn't depend on cache temperature).
    for key in ("schema_version", "design_points", "workloads", "cpi", "ipc", "power",
                "mean_cpi_rank_correlation", "min_cpi_rank_correlation"):
        assert plain[key] == fused_report[key], (
            f"analytical column `{key}` differs between the plain and corrected runs: "
            f"{plain[key]!r} vs {fused_report[key]!r}"
        )

    # Gate 2: corrected error never exceeds analytical error.
    a_err, f_err = plain["cpi"]["mean_abs"], fused["cpi"]["mean_abs"]
    print(f"pooled mean |CPI error|: analytical {a_err:.4f} -> fused {f_err:.4f}")
    assert f_err <= a_err, f"fused mean |CPI error| {f_err} exceeds analytical {a_err}"
    for pw, fw in zip(plain["workloads"], fused["workloads"]):
        assert pw["workload"] == fw["workload"], "workload order diverged"
        a, f = pw["cpi"]["mean_abs"], fw["cpi"]["mean_abs"]
        print(f"  {pw['workload']}: |CPI error| {a:.4f} -> {f:.4f}, "
              f"rho {pw['cpi_rank_correlation']:.3f} -> {fw['cpi_rank_correlation']:.3f} "
              f"(delta {fw['cpi_rank_delta']:+.3f})")
        assert f <= a, f"{pw['workload']}: fused |CPI error| {f} exceeds analytical {a}"

    # Gate 3: ranking is preserved or improved.
    for pw, fw in zip(plain["workloads"], fused["workloads"]):
        a_rho, f_rho = pw["cpi_rank_correlation"], fw["cpi_rank_correlation"]
        assert f_rho >= a_rho - RHO_EPSILON, (
            f"{pw['workload']}: fused Spearman {f_rho} degraded below "
            f"analytical {a_rho} - {RHO_EPSILON}"
        )
    mean_delta = fused["mean_cpi_rank_delta"]
    print(f"mean CPI rank delta: {mean_delta:+.4f} (min {fused['min_cpi_rank_delta']:+.4f})")
    assert mean_delta >= 0.0, f"mean rank delta {mean_delta} is negative — correction hurt ranking"

    # Gate 4: the fused section names the artifact that was applied.
    info = fused["corrector"]
    for key in ("schema_version", "seed", "lambda", "rows_train", "rows_test"):
        assert info[key] == artifact[key], (
            f"fused corrector metadata `{key}` {info[key]!r} does not match "
            f"the artifact's {artifact[key]!r}"
        )
    assert artifact["rows_train"] + artifact["rows_test"] == artifact["rows_total"]

    print("fusion smoke: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

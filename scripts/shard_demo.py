#!/usr/bin/env python3
"""Drive a sharded `pmt explore` sweep end to end (CI's shard-smoke job).

Asserts the distributed-sweep determinism contract on the 103,680-point
demo space, using only the `pmt` binary and stdlib Python:

1. **Shard + merge byte-identity** — the demo space is swept in 3 shards
   (`pmt explore --shard i/3 --snapshot-out ...`), the snapshots merged
   (`pmt merge --out ...`), and the merged ExploreResponse must be
   **byte-identical** to the one a single-process
   `pmt explore --out` run writes.
2. **Kill + resume** — one of the three shards is SIGKILLed mid-sweep
   (after its checkpoint file appears) and restarted with `--resume`;
   the byte-identity in (1) must hold anyway, proving a resumed shard
   reproduces the uninterrupted fold exactly.

Usage:
  shard_demo.py --pmt target/release/pmt [--workdir DIR] [--shards N]
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

EXPLORE_FLAGS = [
    "--space", "big", "--top", "5", "--objective", "energy",
    "--max-rob", "256", "--max-power", "35",
]


def run(cmd, **kwargs):
    print("+", " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True, **kwargs)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--pmt", required=True, help="path to the pmt binary")
    ap.add_argument("--workdir", help="scratch directory (default: a temp dir)")
    ap.add_argument("--shards", type=int, default=3)
    args = ap.parse_args()
    pmt = os.path.abspath(args.pmt)
    work = args.workdir or tempfile.mkdtemp(prefix="pmt-shard-demo-")
    os.makedirs(work, exist_ok=True)
    os.chdir(work)
    print(f"working in {work}")

    run([pmt, "profile", "mcf", "--instructions", "50000",
         "--out", "mcf.profile.json"])
    explore = [pmt, "explore", "--profile", "mcf.profile.json"] + EXPLORE_FLAGS

    # The single-process reference every sharded result must reproduce.
    run(explore + ["--out", "reference.json"])

    n = args.shards
    killed = n // 2  # the middle shard gets SIGKILLed and resumed

    for i in range(n):
        if i == killed:
            continue
        run(explore + ["--shard", f"{i}/{n}",
                       "--snapshot-out", f"shard{i}.json"])

    # The victim shard: checkpoint after every other chunk, SIGKILL it as
    # soon as the first checkpoint lands, then resume from the file.
    ckpt = f"shard{killed}.ckpt.json"
    victim = explore + ["--shard", f"{killed}/{n}",
                        "--snapshot-out", f"shard{killed}.json",
                        "--checkpoint", ckpt, "--checkpoint-every", "2"]
    print("+", " ".join(victim), "  # will be SIGKILLed", flush=True)
    proc = subprocess.Popen(victim)
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        if os.path.exists(ckpt):
            break
        if proc.poll() is not None:
            sys.exit(f"shard {killed} exited before its first checkpoint")
        time.sleep(0.05)
    else:
        sys.exit(f"shard {killed} never wrote a checkpoint")
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()
    print(f"SIGKILLed shard {killed} (pid {proc.pid})")

    with open(ckpt) as f:
        snap = json.load(f)["shard"]
    owned = snap["chunk_hi"] - snap["chunk_lo"]
    print(f"checkpoint carries {snap['chunks_done']}/{owned} chunks")
    assert snap["chunks_done"] < owned, (
        "shard finished before the kill — nothing was actually interrupted"
    )
    assert not os.path.exists(f"shard{killed}.json"), (
        "a killed shard must not have written its final snapshot"
    )

    # Resume from the checkpoint (shard coordinates are inferred from it).
    run(explore + ["--resume", ckpt,
                   "--snapshot-out", f"shard{killed}.json",
                   "--checkpoint", ckpt, "--checkpoint-every", "2"])
    with open(f"shard{killed}.json") as f:
        resumed = json.load(f)["shard"]
    assert resumed["chunks_done"] == owned, "resumed shard is not complete"

    run([pmt, "merge"] + [f"shard{i}.json" for i in range(n)]
        + ["--out", "merged.json"])

    with open("reference.json", "rb") as f:
        reference = f.read()
    with open("merged.json", "rb") as f:
        merged = f.read()
    assert merged == reference, (
        f"merged response ({len(merged)} bytes) differs from the "
        f"single-process reference ({len(reference)} bytes)"
    )
    print(f"OK: {n}-shard merge (one shard killed and resumed) is "
          f"byte-identical to the single-process run ({len(merged)} bytes)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Check that Markdown links in the given files resolve.

Verifies every inline link target:
  * relative file links (``[x](../README.md)``, ``[x](figures/a.svg)``)
    must exist on disk relative to the linking file,
  * fragment links (``[x](#section)`` or ``file.md#section``) must match
    a heading anchor in the target file,
  * absolute URLs are skipped (this repo builds offline).

Usage: scripts/check_doc_links.py FILE.md [FILE.md ...]
Exits non-zero listing every broken link. CI runs it over
docs/ARCHITECTURE.md and README.md so the architecture guide can never
silently rot.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
IMAGE = re.compile(r"!\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def anchors(md_text: str) -> set[str]:
    """GitHub-style anchors for every heading in the document."""
    out = set()
    for heading in HEADING.findall(md_text):
        text = re.sub(r"[`*_]", "", heading).strip().lower()
        text = re.sub(r"[^\w\- ]", "", text)
        out.add(text.replace(" ", "-"))
    return out


def check_file(path: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    targets = LINK.findall(text) + IMAGE.findall(text)
    for target in targets:
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, fragment = target.partition("#")
        dest = path if not file_part else (path.parent / file_part).resolve()
        if not dest.exists():
            errors.append(f"{path}: broken link -> {target}")
            continue
        if fragment and dest.suffix == ".md":
            if fragment.lower() not in anchors(dest.read_text(encoding="utf-8")):
                errors.append(f"{path}: missing anchor -> {target}")
    return errors


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors = []
    for name in sys.argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{path}: file does not exist")
            continue
        errors.extend(check_file(path))
    for e in errors:
        print(e, file=sys.stderr)
    if not errors:
        print(f"all links resolve in {len(sys.argv) - 1} file(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())

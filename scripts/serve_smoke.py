#!/usr/bin/env python3
"""Smoke-drive a running `pmt serve` daemon (CI's serve-smoke job).

Asserts the service's three headline contracts, using only the public
wire API and `/metrics`:

1. **CLI/daemon byte-identity** — POSTing the request that
   `pmt explore --emit-request` captured returns *exactly* the bytes
   `pmt explore --out` wrote (``--expect``).
2. **Warm-repeat caching** — repeating the identical request N ways
   concurrently performs **zero** new predictions: every repeat is a
   response-cache hit.
3. **Coalescing** — N concurrent *cold* identical requests (a variant
   the cache has never seen) are computed **once**: exactly one leader
   predicts the space, everyone else is a coalesced follower, a cache
   hit (if they arrived after completion), or a structured 429.
   `cache_hits + coalesced + busy + 1 == N` must hold exactly.
4. **Micro-batching** (with ``--solo-url`` and ``--predict-request``) —
   N concurrent *distinct* predicts (DVFS frequency ladder) ride shared
   `BatchPredictor` flights (``batched_requests`` grows), and every
   response is byte-identical to replaying the same request against a
   ``--batch-window-ms 0`` control daemon.

After all phases the extended request partition must hold exactly on
the batched daemon:
``hits + coalesced + batched + rejected + failed + leaders == N``.

Usage:
  serve_smoke.py --url http://127.0.0.1:7071 \
      --solo-url http://127.0.0.1:7072 \
      --request explore-request.json --expect cli-explore.json \
      --predict-request predict-request.json
"""

import argparse
import concurrent.futures
import json
import sys
import time
import urllib.error
import urllib.request


def http(url, body=None):
    """One exchange → (status, bytes, headers)."""
    req = urllib.request.Request(url, data=body, method="POST" if body else "GET")
    try:
        with urllib.request.urlopen(req, timeout=300) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as e:
        return e.code, e.read(), dict(e.headers)


def metrics(base):
    status, body, _ = http(base + "/metrics")
    assert status == 200, f"/metrics: {status} {body!r}"
    return json.loads(body)


def wait_healthy(base, seconds=60):
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        try:
            status, body, _ = http(base + "/healthz")
            if status == 200 and json.loads(body)["status"] == "ok":
                return
        except OSError:
            pass
        time.sleep(0.2)
    sys.exit(f"daemon at {base} never became healthy")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--url", required=True, help="daemon base URL")
    ap.add_argument("--request", required=True, help="ExploreRequest JSON (from --emit-request)")
    ap.add_argument("--expect", required=True, help="ExploreResponse the CLI wrote (from --out)")
    ap.add_argument("--solo-url", help="control daemon with --batch-window-ms 0 (phase 4)")
    ap.add_argument("--predict-request",
                    help="PredictRequest JSON from `pmt predict --emit-request` (phase 4)")
    ap.add_argument("--concurrency", type=int, default=8)
    args = ap.parse_args()
    base = args.url.rstrip("/")
    n = args.concurrency
    served = 0  # requests the batched daemon answered (partition N)

    wait_healthy(base)
    with open(args.request, "rb") as f:
        request = f.read()
    with open(args.expect, "rb") as f:
        expected = f.read()

    # 1. Byte-identity with the CLI.
    status, body, headers = http(base + "/v1/explore", request)
    assert status == 200, f"explore: {status} {body!r}"
    assert body == expected, (
        "served ExploreResponse differs from the CLI's --out bytes "
        f"(served {len(body)}B vs CLI {len(expected)}B)"
    )
    evaluated = json.loads(body)["summary"]["evaluated"]
    served += 1
    print(f"byte-identity: served /v1/explore == CLI --out ({len(body)} bytes, "
          f"{evaluated} points evaluated)")

    # 2. Warm repeats predict nothing.
    before = metrics(base)
    with concurrent.futures.ThreadPoolExecutor(n) as pool:
        replies = list(pool.map(lambda _: http(base + "/v1/explore", request), range(n)))
    after = metrics(base)
    for status, body, _ in replies:
        assert status == 200, f"warm repeat: {status} {body!r}"
        assert body == expected, "warm repeat returned different bytes"
    new_points = after["points_predicted"] - before["points_predicted"]
    new_hits = after["response_cache_hits"] - before["response_cache_hits"]
    assert new_points == 0, f"warm repeats predicted {new_points} new points"
    assert new_hits == n, f"expected {n} cache hits, saw {new_hits}"
    served += n
    print(f"warm cache: {n} concurrent repeats → 0 new predictions, {new_hits} cache hits")

    # 3. Cold identical requests are computed exactly once.
    variant = json.loads(request)
    variant["objective"] = "edp" if variant.get("objective") != "edp" else "cpi"
    cold = json.dumps(variant, separators=(",", ":")).encode()
    before = metrics(base)
    with concurrent.futures.ThreadPoolExecutor(n) as pool:
        replies = list(pool.map(lambda _: http(base + "/v1/explore", cold), range(n)))
    after = metrics(base)

    ok = [r for r in replies if r[0] == 200]
    busy = [r for r in replies if r[0] == 429]
    assert len(ok) + len(busy) == n, f"unexpected statuses: {[r[0] for r in replies]}"
    for status, _, headers in busy:
        assert "Retry-After" in headers, "429 without a Retry-After header"
    bodies = {body for _, body, _ in ok}
    assert len(bodies) == 1, "coalesced requests returned differing bytes"

    new_points = after["points_predicted"] - before["points_predicted"]
    assert new_points == evaluated, (
        f"identical concurrent requests were computed more than once "
        f"({new_points} new points for a {evaluated}-point job)"
    )
    hits = after["response_cache_hits"] - before["response_cache_hits"]
    coalesced = after["coalesced_requests"] - before["coalesced_requests"]
    rejected = after["rejected_busy"] - before["rejected_busy"]
    assert hits + coalesced + rejected + 1 == n, (
        f"request accounting broke: {hits} hits + {coalesced} coalesced + "
        f"{rejected} busy + 1 leader != {n}"
    )
    assert rejected == len(busy)
    served += n
    print(f"coalescing: {n} cold identical requests → 1 leader, "
          f"{coalesced} coalesced, {hits} cache hits, {rejected} busy")

    # 4. Distinct concurrent predicts share micro-batch flights, and the
    #    flights change no one's bytes: every response must equal a solo
    #    replay against the --batch-window-ms 0 control daemon.
    if args.solo_url and args.predict_request:
        solo = args.solo_url.rstrip("/")
        wait_healthy(solo)
        with open(args.predict_request) as f:
            template = json.load(f)
        variants = []
        for i in range(n):
            template["machine"]["config"]["core"]["frequency_ghz"] = 1.0 + 0.001 * i
            variants.append(json.dumps(template, separators=(",", ":")).encode())

        before = metrics(base)
        with concurrent.futures.ThreadPoolExecutor(n) as pool:
            replies = list(pool.map(lambda v: http(base + "/v1/predict", v), variants))
        after = metrics(base)
        for status, body, _ in replies:
            assert status == 200, f"batched predict: {status} {body!r}"
        assert len({body for _, body, _ in replies}) == n, \
            "distinct design points returned duplicated response bytes"
        served += n

        batched = after["batched_requests"] - before["batched_requests"]
        flights = after["batch_flights"] - before["batch_flights"]
        leaders = after["flight_leaders"] - before["flight_leaders"]
        failed = after["failed_requests"] - before["failed_requests"]
        assert failed == 0, f"{failed} predicts failed"
        assert batched > 0, (
            f"no request rode a shared flight ({flights} flights for {n} "
            f"concurrent distinct predicts)"
        )
        assert batched + leaders == n, (
            f"predict accounting broke: {batched} batched + {leaders} leaders != {n}"
        )

        for variant, (_, body, _) in zip(variants, replies):
            status, solo_body, _ = http(solo + "/v1/predict", variant)
            assert status == 200, f"solo replay: {status} {solo_body!r}"
            assert solo_body == body, (
                "a batched response differs from its solo replay — shared "
                "flights changed someone's bytes"
            )
        print(f"micro-batching: {n} concurrent distinct predicts → {flights} flight(s), "
              f"{batched} answered from a shared flight; all bytes == solo replays")

    # Extended partition: every request the daemon ever answered is
    # exactly one of hit / coalesced / batched / rejected / failed /
    # flight leader.
    after = metrics(base)
    terms = {k: after[k] for k in (
        "response_cache_hits", "coalesced_requests", "batched_requests",
        "rejected_busy", "failed_requests", "flight_leaders")}
    total = sum(terms.values())
    assert total == served, (
        f"extended request partition broke: {terms} sums to {total}, "
        f"but {served} requests were served"
    )
    print(f"partition: {terms} == {served} requests served")

    print("serve smoke OK:", json.dumps(after))


if __name__ == "__main__":
    main()

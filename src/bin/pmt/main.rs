//! `pmt` — the command-line front-end of the framework, mirroring the
//! paper's open-sourced AIP (profiler) + PMT (modeling tool) pair.
//!
//! ```console
//! $ pmt list
//! $ pmt profile mcf --instructions 1000000 --out mcf.profile.json
//! $ pmt predict --profile mcf.profile.json --machine nehalem
//! $ pmt simulate mcf --instructions 200000
//! $ pmt sweep --profile mcf.profile.json
//! $ pmt explore --profile mcf.profile.json --space big --out summary.json
//! $ pmt corun milc mcf --instructions 200000
//! $ pmt validate --workloads astar,mcf --smoke
//! $ pmt train --smoke --cache sim.cache.json --out corrector.json
//! $ pmt validate --smoke --corrector corrector.json
//! $ pmt serve --profile-file mcf.profile.json --addr 127.0.0.1:7071
//! ```
//!
//! Every subcommand parses flags through the shared [`args`] helper
//! (per-subcommand `--help`, usage errors exit 2, runtime errors exit 1),
//! and the JSON the CLI emits (`predict --json`, `explore --out`,
//! `validate --out`) is the versioned wire schema of [`pmt::api`] — the
//! same bytes the `pmt serve` daemon answers with.

mod args;
mod commands;
mod explore;
mod merge;
mod serve;
mod train;

use args::CliError;
use pmt::prelude::*;
use pmt::profiler::ApplicationProfile;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprintln!("{}", overview());
        return ExitCode::from(2);
    };
    let rest = &argv[1..];
    let result = match command.as_str() {
        "list" => commands::list(rest),
        "profile" => commands::profile(rest),
        "predict" => commands::predict(rest),
        "simulate" => commands::simulate(rest),
        "sweep" => commands::sweep(rest),
        "explore" => explore::run(rest),
        "merge" => merge::run(rest),
        "validate" => commands::validate(rest),
        "train" => train::run(rest),
        "report" => commands::report(rest),
        "corun" => commands::corun(rest),
        "smt" => commands::smt(rest),
        "serve" => serve::run(rest),
        "help" | "--help" | "-h" => {
            println!("{}", overview());
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{}",
            overview()
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            e.exit_code()
        }
    }
}

/// The top-level help: one line per subcommand, generated from the same
/// [`args::Command`] declarations the parser uses.
fn overview() -> String {
    let mut out = String::from(
        "pmt — micro-architecture independent processor performance & power modeling\n\nCOMMANDS:",
    );
    for c in all_commands() {
        out.push_str(&format!("\n  {:<10} {}", c.name, c.about));
    }
    out.push_str(
        "\n\nRun `pmt <command> --help` for the command's flags.\n\
         MACHINES: nehalem (default) | nehalem-pf | low-power",
    );
    out
}

/// Every subcommand's grammar, for the overview.
fn all_commands() -> Vec<&'static args::Command> {
    vec![
        &commands::LIST,
        &commands::PROFILE,
        &commands::PREDICT,
        &commands::SIMULATE,
        &commands::SWEEP,
        &explore::EXPLORE,
        &merge::MERGE,
        &commands::VALIDATE,
        &train::TRAIN,
        &commands::REPORT,
        &commands::CORUN,
        &commands::SMT,
        &serve::SERVE,
    ]
}

/// Look a workload up by name, with a friendly error.
fn workload(name: &str) -> Result<WorkloadSpec, CliError> {
    WorkloadSpec::by_name(name)
        .ok_or_else(|| CliError::Runtime(format!("unknown workload `{name}` — try `pmt list`")))
}

/// Profile a workload at CLI scale (window scaled so short runs still
/// yield many micro-traces).
fn profile_workload(name: &str, n: u64) -> Result<ApplicationProfile, CliError> {
    let spec = workload(name)?;
    let mut cfg = ProfilerConfig::thesis_default();
    cfg.sampling = pmt::trace::SamplingConfig {
        micro_trace_instructions: 1_000,
        window_instructions: (n / 100).clamp(1_000, 1_000_000),
    };
    Ok(Profiler::new(cfg).profile_named(name, &mut spec.trace(n)))
}

/// Load an [`ApplicationProfile`] from a `--profile FILE` flag.
fn load_profile(parsed: &args::Parsed, command: &str) -> Result<ApplicationProfile, CliError> {
    let Some(path) = parsed.value("--profile") else {
        return Err(CliError::Usage(format!(
            "`pmt {command}` needs `--profile FILE` (see `pmt {command} --help`)"
        )));
    };
    read_profile(path)
}

/// Load an [`ApplicationProfile`] from a path.
fn read_profile(path: &str) -> Result<ApplicationProfile, CliError> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| CliError::Runtime(format!("reading {path}: {e}")))?;
    serde_json::from_str(&json).map_err(|e| CliError::Runtime(format!("parsing {path}: {e}")))
}

/// Resolve `--machine` through the shared wire registry
/// ([`pmt::api::machine_by_name`]), defaulting to `nehalem`.
fn machine(parsed: &args::Parsed) -> Result<MachineConfig, CliError> {
    let name = parsed.value("--machine").unwrap_or("nehalem");
    pmt::api::machine_by_name(name).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown machine `{name}` for `--machine` (known: {})",
            pmt::api::MACHINE_NAMES.join(", ")
        ))
    })
}

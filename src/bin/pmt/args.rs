//! The one flag parser every subcommand shares.
//!
//! Each subcommand declares its [`Command`]: positionals, flags (with or
//! without a value), one-line help per flag. Parsing then behaves
//! identically everywhere:
//!
//! * `--help`/`-h` prints the subcommand's generated help and exits 0;
//! * an unknown flag is a usage error **naming the flag and the
//!   subcommand** and listing what the subcommand accepts;
//! * a value flag without a value, or an unparsable value, is a usage
//!   error naming the flag;
//! * usage errors exit 2, runtime errors exit 1 (see [`CliError`]).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::str::FromStr;

/// A CLI failure, split by whose fault it is: `Usage` (the invocation is
/// wrong — exit 2) or `Runtime` (the work failed — exit 1).
#[derive(Debug)]
pub enum CliError {
    /// The invocation is malformed; the message names the offender.
    Usage(String),
    /// The command ran and failed.
    Runtime(String),
}

impl CliError {
    /// The process exit code for this error.
    pub fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Usage(_) => ExitCode::from(2),
            CliError::Runtime(_) => ExitCode::FAILURE,
        }
    }

    /// The message.
    pub fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => m,
        }
    }
}

/// Runtime errors are the common case for `?` on I/O and model failures.
impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError::Runtime(message)
    }
}

/// One flag a subcommand accepts.
pub struct Flag {
    /// The flag, with dashes (`--out`).
    pub name: &'static str,
    /// Metavariable when the flag takes a value (`Some("FILE")`), `None`
    /// for a switch.
    pub value: Option<&'static str>,
    /// One-line help.
    pub help: &'static str,
}

impl Flag {
    /// A flag taking a value.
    pub const fn value(name: &'static str, metavar: &'static str, help: &'static str) -> Flag {
        Flag {
            name,
            value: Some(metavar),
            help,
        }
    }

    /// A boolean switch.
    pub const fn switch(name: &'static str, help: &'static str) -> Flag {
        Flag {
            name,
            value: None,
            help,
        }
    }
}

/// A subcommand's full flag grammar.
pub struct Command {
    /// Subcommand name (`explore`).
    pub name: &'static str,
    /// One-line description for the top-level help.
    pub about: &'static str,
    /// Positional-argument sketch (`"<workload>"`, `""` for none).
    pub positionals: &'static str,
    /// Every accepted flag.
    pub flags: &'static [Flag],
}

impl Command {
    /// The generated `--help` text.
    pub fn help(&self) -> String {
        let mut out = format!(
            "pmt {} — {}\n\nUSAGE:\n  pmt {}",
            self.name, self.about, self.name
        );
        if !self.positionals.is_empty() {
            let _ = write!(out, " {}", self.positionals);
        }
        if !self.flags.is_empty() {
            out.push_str(" [FLAGS]\n\nFLAGS:");
            for f in self.flags {
                let mut left = f.name.to_string();
                if let Some(metavar) = f.value {
                    let _ = write!(left, " {metavar}");
                }
                let _ = write!(out, "\n  {left:<24} {}", f.help);
            }
        }
        out.push_str("\n  --help                   show this help");
        out
    }

    /// Parse `args`. Returns `Ok(None)` when `--help` was printed (the
    /// caller exits 0), `Err` on a usage mistake.
    pub fn parse(&self, args: &[String]) -> Result<Option<Parsed>, CliError> {
        let mut parsed = Parsed {
            positionals: Vec::new(),
            values: HashMap::new(),
            switches: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if arg == "--help" || arg == "-h" {
                println!("{}", self.help());
                return Ok(None);
            }
            if arg.starts_with("--") {
                let flag = arg.as_str();
                let Some(spec) = self.flags.iter().find(|f| f.name == flag) else {
                    let known: Vec<&str> = self.flags.iter().map(|f| f.name).collect();
                    return Err(CliError::Usage(format!(
                        "unknown flag `{flag}` for `pmt {}` (accepted: {}{}--help)",
                        self.name,
                        known.join(", "),
                        if known.is_empty() { "" } else { ", " },
                    )));
                };
                if spec.value.is_some() {
                    let Some(value) = it.next() else {
                        return Err(CliError::Usage(format!(
                            "flag `{flag}` of `pmt {}` needs a value ({})",
                            self.name,
                            spec.value.unwrap_or("VALUE"),
                        )));
                    };
                    parsed
                        .values
                        .entry(spec.name)
                        .or_default()
                        .push(value.clone());
                } else {
                    parsed.switches.push(spec.name);
                }
            } else {
                parsed.positionals.push(arg.clone());
            }
        }
        Ok(Some(parsed))
    }
}

/// The parsed invocation of one subcommand.
pub struct Parsed {
    positionals: Vec<String>,
    values: HashMap<&'static str, Vec<String>>,
    switches: Vec<&'static str>,
}

impl Parsed {
    /// All positional arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The one positional argument a command requires.
    pub fn required_positional(&self, what: &str, command: &str) -> Result<&str, CliError> {
        self.positionals.first().map(String::as_str).ok_or_else(|| {
            CliError::Usage(format!(
                "`pmt {command}` needs {what} (see `pmt {command} --help`)"
            ))
        })
    }

    /// Last value of a flag (`--x a --x b` → `b`), `None` if absent.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// Every value of a repeatable flag, in order.
    pub fn values(&self, name: &str) -> &[String] {
        self.values.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Parse a flag's value, or report a usage error naming the flag.
    pub fn parsed<T: FromStr>(&self, name: &str, want: &str) -> Result<Option<T>, CliError> {
        match self.value(name) {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|_| {
                CliError::Usage(format!("invalid value `{raw}` for `{name}` (want {want})"))
            }),
        }
    }

    /// [`parsed`](Self::parsed) with a default.
    pub fn parsed_or<T: FromStr>(&self, name: &str, want: &str, default: T) -> Result<T, CliError> {
        Ok(self.parsed(name, want)?.unwrap_or(default))
    }

    /// Whether a switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(&name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CMD: Command = Command {
        name: "demo",
        about: "a test command",
        positionals: "<thing>",
        flags: &[
            Flag::value("--out", "FILE", "write here"),
            Flag::value("--n", "N", "how many"),
            Flag::switch("--fast", "go fast"),
        ],
    };

    #[test]
    fn parses_positionals_values_switches_and_repeats() {
        let args: Vec<String> = ["x", "--n", "5", "--fast", "--out", "a", "--out", "b"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let p = CMD.parse(&args).unwrap().unwrap();
        assert_eq!(p.positionals(), &["x".to_string()]);
        assert_eq!(p.required_positional("a thing", "demo").unwrap(), "x");
        assert_eq!(p.parsed::<u32>("--n", "a count").unwrap(), Some(5));
        assert!(p.switch("--fast"));
        assert_eq!(p.value("--out"), Some("b"));
        assert_eq!(p.values("--out"), &["a".to_string(), "b".to_string()]);
        assert_eq!(p.parsed_or::<u64>("--missing", "a count", 7).unwrap(), 7);
    }

    #[test]
    fn unknown_flag_names_flag_and_subcommand() {
        let args = vec!["--bogus".to_string()];
        let err = match CMD.parse(&args) {
            Err(e) => e,
            Ok(_) => panic!("expected a usage error"),
        };
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.message().contains("--bogus"));
        assert!(err.message().contains("pmt demo"));
        assert!(err.message().contains("--out"));
        assert_eq!(err.exit_code(), ExitCode::from(2));
    }

    #[test]
    fn missing_value_and_bad_value_name_the_flag() {
        let args = vec!["--out".to_string()];
        let err = CMD.parse(&args).err().unwrap();
        assert!(err.message().contains("--out"));
        assert!(err.message().contains("FILE"));

        let args: Vec<String> = ["--n", "lots"].iter().map(|s| s.to_string()).collect();
        let p = CMD.parse(&args).unwrap().unwrap();
        let err = p.parsed::<u32>("--n", "a count").err().unwrap();
        assert!(err.message().contains("lots"));
        assert!(err.message().contains("--n"));
    }

    #[test]
    fn help_lists_every_flag() {
        let help = CMD.help();
        for f in CMD.flags {
            assert!(help.contains(f.name), "help misses {}", f.name);
        }
        assert!(help.contains("pmt demo"));
        assert!(help.contains("<thing>"));
    }
}

//! Every subcommand except `explore` and `serve` (which get their own
//! modules): the [`Command`] grammar each one parses with, plus its body.
//!
//! Human-readable output is unchanged from the pre-redesign CLI; the
//! machine-readable outputs (`predict --json`, `validate --out`) are the
//! versioned wire types of [`pmt::api`], produced by the same
//! [`pmt::serve::engine`] functions the daemon answers with.

use crate::args::{CliError, Command, Flag, Parsed};
use pmt::dse::{ParetoFront, SpaceEvaluation, SweepConfig};
use pmt::model::{MulticoreModel, SmtModel};
use pmt::prelude::*;
use pmt::profiler::ApplicationProfile;

/// Map a structured wire error onto the CLI's exit-code split: client
/// mistakes (4xx) are usage errors (exit 2), everything else is runtime
/// (exit 1).
pub fn api_err(e: pmt::api::ApiError) -> CliError {
    if (400..500).contains(&e.status) {
        CliError::Usage(e.body.message)
    } else {
        CliError::Runtime(e.body.message)
    }
}

/// Parse, short-circuiting `Ok(())` when `--help` was printed.
macro_rules! parse_or_return {
    ($command:expr, $args:expr) => {
        match $command.parse($args)? {
            Some(parsed) => parsed,
            None => return Ok(()),
        }
    };
}

fn instructions(parsed: &Parsed) -> Result<u64, CliError> {
    parsed.parsed_or("--instructions", "an instruction count", 1_000_000)
}

// ---------------------------------------------------------------- list

pub const LIST: Command = Command {
    name: "list",
    about: "list the workload suite",
    positionals: "",
    flags: &[],
};

pub fn list(args: &[String]) -> Result<(), CliError> {
    parse_or_return!(LIST, args);
    println!("the 29 SPEC CPU 2006 stand-ins:");
    for name in SUITE {
        println!("  {name}");
    }
    Ok(())
}

// ------------------------------------------------------------- profile

pub const PROFILE: Command = Command {
    name: "profile",
    about: "profile a workload once, micro-architecture independently (AIP step)",
    positionals: "<workload>",
    flags: &[
        Flag::value(
            "--instructions",
            "N",
            "instructions to profile (default 1000000)",
        ),
        Flag::value(
            "--out",
            "FILE",
            "write the profile JSON here instead of stdout",
        ),
    ],
};

pub fn profile(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_or_return!(PROFILE, args);
    let name = parsed.required_positional("a workload name", "profile")?;
    let n = instructions(&parsed)?;
    let profile = crate::profile_workload(name, n)?;
    let json = serde_json::to_string(&profile).map_err(|e| e.to_string())?;
    match parsed.value("--out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
            println!(
                "profiled {} instructions of {name} → {path} ({} micro-traces, {} bytes)",
                profile.total_instructions,
                profile.micro_traces.len(),
                json.len()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

// ------------------------------------------------------------- predict

pub const PREDICT: Command = Command {
    name: "predict",
    about: "predict CPI stack + power for one (profile, machine) point",
    positionals: "",
    flags: &[
        Flag::value(
            "--profile",
            "FILE",
            "application profile JSON (from `pmt profile`)",
        ),
        Flag::value(
            "--machine",
            "M",
            "nehalem (default) | nehalem-pf | low-power",
        ),
        Flag::switch(
            "--json",
            "print the wire-schema PredictResponse instead of text",
        ),
        Flag::value("--out", "FILE", "write the PredictResponse JSON here"),
        Flag::value(
            "--emit-request",
            "FILE",
            "also write the wire PredictRequest (machine inlined) here",
        ),
    ],
};

pub fn predict(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_or_return!(PREDICT, args);
    let profile = crate::load_profile(&parsed, "predict")?;
    let machine_name = parsed.value("--machine").unwrap_or("nehalem");

    if let Some(path) = parsed.value("--emit-request") {
        // The machine is inlined (not named) so scripted callers can
        // mutate individual fields — e.g. `frequency_ghz` — to
        // synthesize distinct design points against a daemon.
        let m = MachineSpec::named(machine_name)
            .resolve()
            .map_err(api_err)?;
        let req = PredictRequest::new(&profile.name, MachineSpec::inline(m));
        let json = serde_json::to_string(&req).map_err(|e| e.to_string())?;
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("predict request -> {path}");
    }

    if parsed.switch("--json") || parsed.value("--out").is_some() {
        // The wire path: the same engine call the daemon answers with,
        // so these bytes match a served `/v1/predict` response.
        let prepared = PreparedProfile::new(&profile);
        let req = PredictRequest::new(&profile.name, MachineSpec::named(machine_name));
        let resp = pmt::serve::engine::predict_response(&prepared, &req).map_err(api_err)?;
        let json = serde_json::to_string(&resp).map_err(|e| e.to_string())?;
        if let Some(path) = parsed.value("--out") {
            std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("prediction -> {path}");
        }
        if parsed.switch("--json") {
            println!("{json}");
        }
        return Ok(());
    }

    let m = crate::machine(&parsed)?;
    let prediction = IntervalModel::new(&m).predict(&profile);
    let power = PowerModel::new(&m).power(&prediction.activity);
    println!("workload   : {}", profile.name);
    println!("machine    : {}", m.name);
    println!(
        "CPI        : {:.3}  (IPC {:.2}, MLP {:.2})",
        prediction.cpi(),
        prediction.ipc(),
        prediction.mlp
    );
    for (c, v) in prediction.cpi_stack.iter() {
        if v > 0.0005 {
            println!("  {:<8} {:.3}", c.label(), v);
        }
    }
    println!(
        "power      : {:.1} W  ({:.1} W static, {:.0}%)",
        power.total(),
        power.static_w,
        power.static_fraction() * 100.0
    );
    println!(
        "time       : {:.3} ms at {:.2} GHz",
        prediction.seconds_at(m.core.frequency_ghz) * 1e3,
        m.core.frequency_ghz
    );
    Ok(())
}

// ------------------------------------------------------------ simulate

pub const SIMULATE: Command = Command {
    name: "simulate",
    about: "cycle-level out-of-order simulation (ground truth)",
    positionals: "<workload>",
    flags: &[
        Flag::value(
            "--instructions",
            "N",
            "instructions to simulate (default 1000000)",
        ),
        Flag::value(
            "--machine",
            "M",
            "nehalem (default) | nehalem-pf | low-power",
        ),
    ],
};

pub fn simulate(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_or_return!(SIMULATE, args);
    let name = parsed.required_positional("a workload name", "simulate")?;
    let spec = crate::workload(name)?;
    let m = crate::machine(&parsed)?;
    let n = instructions(&parsed)?;
    let r = OooSimulator::new(SimConfig::new(m.clone())).run(&mut spec.trace(n));
    println!("workload   : {name}  ({n} instructions)");
    println!("machine    : {}", m.name);
    println!(
        "CPI        : {:.3}  (MLP {:.2}, branch MPKI {:.2})",
        r.cpi(),
        r.mlp,
        r.branch_mpki()
    );
    for (c, v) in r.cpi_stack.iter() {
        if v > 0.0005 {
            println!("  {:<8} {:.3}", c.label(), v);
        }
    }
    let power = PowerModel::new(&m).power(&r.activity);
    println!("power      : {:.1} W", power.total());
    Ok(())
}

// --------------------------------------------------------------- sweep

pub const SWEEP: Command = Command {
    name: "sweep",
    about: "243-point thesis-grid Pareto sweep",
    positionals: "",
    flags: &[Flag::value(
        "--profile",
        "FILE",
        "application profile JSON (from `pmt profile`)",
    )],
};

pub fn sweep(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_or_return!(SWEEP, args);
    let profile = crate::load_profile(&parsed, "sweep")?;
    let points = DesignSpace::thesis_table_6_3().enumerate();
    let eval = SpaceEvaluation::run(&points, &profile, None, &SweepConfig::default());
    let front = ParetoFront::of(&eval.model_points());
    println!(
        "{} of {} designs are Pareto-optimal for {}:",
        front.indices().len(),
        points.len(),
        profile.name
    );
    println!("{:>26} {:>9} {:>9}", "design", "CPI", "watts");
    for i in front.indices() {
        let o = &eval.outcomes[i];
        println!(
            "{:>26} {:>9.3} {:>9.2}",
            points[i].machine.name, o.model_cpi, o.model_power
        );
    }
    Ok(())
}

// ------------------------------------------------------------ validate

pub const VALIDATE: Command = Command {
    name: "validate",
    about: "model-vs-simulator accuracy report (memoized sim runs)",
    positionals: "",
    flags: &[
        Flag::value(
            "--workloads",
            "A,B|all",
            "comma list of workloads (default astar,mcf,…)",
        ),
        Flag::value("--space", "NAME", "full | validation | small"),
        Flag::value("--instructions", "N", "profile instructions per workload"),
        Flag::value(
            "--sim-instructions",
            "N",
            "simulated instructions per point",
        ),
        Flag::value("--out", "FILE", "write the ValidationReport JSON here"),
        Flag::value("--cache", "FILE", "memoized simulation cache to load/save"),
        Flag::value(
            "--corrector",
            "FILE",
            "residual corrector (from `pmt train`) to grade alongside",
        ),
        Flag::value(
            "--max-mean-cpi-error",
            "F",
            "fail if mean |CPI error| exceeds F",
        ),
        Flag::switch("--smoke", "tiny CI scale"),
    ],
};

pub fn validate(args: &[String]) -> Result<(), CliError> {
    use pmt::validate::{ValidationConfig, Validator};
    let parsed = parse_or_return!(VALIDATE, args);
    let smoke = parsed.switch("--smoke");

    let mut config = if smoke {
        ValidationConfig::smoke()
    } else {
        ValidationConfig::default_scale()
    };
    if let Some(n) = parsed.parsed("--instructions", "an instruction count")? {
        config.profile_instructions = n;
    }
    if let Some(n) = parsed.parsed("--sim-instructions", "an instruction count")? {
        config.sim_instructions = n;
    }

    let space_name = parsed
        .value("--space")
        .unwrap_or(if smoke { "validation" } else { "full" });
    let space = match space_name {
        "full" => DesignSpace::thesis_table_6_3(),
        "validation" => DesignSpace::validation_subspace(),
        "small" => DesignSpace::small(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown space `{other}` for `--space` (full|validation|small)"
            )))
        }
    };

    let default_workloads = if smoke {
        "astar,mcf"
    } else {
        "astar,gcc,mcf,milc"
    };
    let workloads = parsed.value("--workloads").unwrap_or(default_workloads);
    let names: Vec<&str> = if workloads == "all" {
        SUITE.to_vec()
    } else {
        workloads.split(',').map(str::trim).collect()
    };

    let mut validator = Validator::new(config.clone()).space(&space);
    for name in &names {
        validator = validator.workload_named(name)?;
    }
    let cache_path = parsed.value("--cache");
    if let Some(path) = cache_path {
        if std::path::Path::new(path).exists() {
            validator = validator.cache(std::sync::Arc::new(SimCache::load(path)?));
        }
    }
    let corrector = match parsed.value("--corrector") {
        Some(path) => {
            let json = std::fs::read_to_string(path)
                .map_err(|e| CliError::Runtime(format!("reading {path}: {e}")))?;
            Some(
                pmt::ml::ResidualModel::from_json(&json)
                    .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?,
            )
        }
        None => None,
    };

    eprintln!(
        "validating {} workloads x {} points ({} sim instructions each)...",
        names.len(),
        space.len(),
        config.sim_instructions
    );
    // A fingerprint mismatch (corrector trained on different profiles)
    // is a structured runtime error, not a silently self-graded report.
    let report = validator
        .run_corrected(corrector.as_ref())
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    print!("{}", report.render_table());

    if let Some(path) = cache_path {
        validator.shared_cache().save(path)?;
        eprintln!("simulation cache -> {path}");
    }
    if let Some(path) = parsed.value("--out") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("validation report -> {path}");
    }
    // A malformed threshold must fail loudly, never silently skip the
    // check — CI's accuracy gate depends on it.
    if let Some(threshold) =
        parsed.parsed::<f64>("--max-mean-cpi-error", "a fraction, e.g. 0.15")?
    {
        if !report.within_cpi_threshold(threshold) {
            return Err(CliError::Runtime(format!(
                "mean |CPI error| {:.2}% exceeds threshold {:.2}%",
                report.mean_abs_cpi_error() * 100.0,
                threshold * 100.0
            )));
        }
        println!(
            "threshold check: mean |CPI error| {:.2}% <= {:.2}% — OK",
            report.mean_abs_cpi_error() * 100.0,
            threshold * 100.0
        );
    }
    Ok(())
}

// -------------------------------------------------------------- report

pub const REPORT: Command = Command {
    name: "report",
    about: "regenerate docs/REPRODUCTION.md, figures and docs/PAPER_MAP.md",
    positionals: "",
    flags: &[
        Flag::value("--out-dir", "DIR", "output directory (default docs)"),
        Flag::value(
            "--cache",
            "FILE",
            "memoized simulation cache to thread through",
        ),
        Flag::switch("--smoke", "tiny CI scale (the committed document's scale)"),
    ],
};

pub fn report(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_or_return!(REPORT, args);
    let out_dir = parsed.value("--out-dir").unwrap_or("docs");
    // Thread the memoized simulation cache through every builder that
    // supports it (the validation and simulated-sweep figures): a warm
    // regeneration performs zero new reference simulations.
    // (`--smoke` is read process-wide by `HarnessConfig::smoke_requested`.)
    if let Some(cache) = parsed.value("--cache") {
        std::env::set_var("PMT_SIM_CACHE", cache);
    }
    let scale = pmt::bench::HarnessConfig::default_scale();
    eprintln!(
        "generating the reproduction report at {} instructions per workload...",
        scale.instructions
    );
    let report = pmt::bench::report_gen::generate();
    let files = pmt::bench::report_gen::write(&report, std::path::Path::new(out_dir))?;
    pmt::bench::harness::save_shared_sim_cache()?;
    let charts = report.figures().filter(|f| f.is_chart()).count();
    let total = report.figures().count();
    println!("report -> {out_dir}/REPRODUCTION.md ({total} figures, {charts} SVGs, {files} files)");
    println!("index  -> {out_dir}/PAPER_MAP.md");
    Ok(())
}

// --------------------------------------------------------------- corun

pub const CORUN: Command = Command {
    name: "corun",
    about: "shared-LLC co-run model",
    positionals: "<w1> <w2> [..]",
    flags: &[
        Flag::value(
            "--instructions",
            "N",
            "instructions to profile (default 1000000)",
        ),
        Flag::value(
            "--machine",
            "M",
            "nehalem (default) | nehalem-pf | low-power",
        ),
    ],
};

pub fn corun(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_or_return!(CORUN, args);
    let names = parsed.positionals();
    if names.len() < 2 {
        return Err(CliError::Usage(
            "`pmt corun` needs at least two workloads (see `pmt corun --help`)".into(),
        ));
    }
    let n = instructions(&parsed)?;
    let m = crate::machine(&parsed)?;
    let profiles: Vec<ApplicationProfile> = names
        .iter()
        .map(|name| crate::profile_workload(name, n))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&ApplicationProfile> = profiles.iter().collect();
    let out = MulticoreModel::new(&m, pmt::model::ModelConfig::default()).predict(&refs);
    println!("co-run on {} ({} cores):", m.name, refs.len());
    println!(
        "{:<12} {:>9} {:>9} {:>10} {:>10}",
        "workload", "soloCPI", "coCPI", "slowdown", "LLC share"
    );
    for c in &out.cores {
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>9.2}x {:>9.0}%",
            c.workload,
            c.solo.cpi(),
            c.shared.cpi(),
            c.slowdown(),
            c.llc_share * 100.0
        );
    }
    println!(
        "throughput {:.2} IPC, mean slowdown {:.2}x ({} fixed-point iterations)",
        out.throughput_ipc(),
        out.mean_slowdown(),
        out.iterations
    );
    Ok(())
}

// ----------------------------------------------------------------- smt

pub const SMT: Command = Command {
    name: "smt",
    about: "SMT (shared-core) model",
    positionals: "<w1> <w2> [..]",
    flags: &[
        Flag::value(
            "--instructions",
            "N",
            "instructions to profile (default 1000000)",
        ),
        Flag::value(
            "--machine",
            "M",
            "nehalem (default) | nehalem-pf | low-power",
        ),
    ],
};

pub fn smt(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_or_return!(SMT, args);
    let names = parsed.positionals();
    if names.len() < 2 {
        return Err(CliError::Usage(
            "`pmt smt` needs at least two workloads (see `pmt smt --help`)".into(),
        ));
    }
    let n = instructions(&parsed)?;
    let m = crate::machine(&parsed)?;
    let profiles: Vec<ApplicationProfile> = names
        .iter()
        .map(|name| crate::profile_workload(name, n))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&ApplicationProfile> = profiles.iter().collect();
    let out = SmtModel::new(&m, pmt::model::ModelConfig::default()).predict(&refs);
    println!("SMT on {} ({} hardware threads):", m.name, refs.len());
    println!(
        "{:<12} {:>9} {:>9} {:>10}",
        "thread", "soloCPI", "smtCPI", "slowdown"
    );
    for t in &out.threads {
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>9.2}x",
            t.workload,
            t.solo.cpi(),
            t.smt.cpi(),
            t.slowdown()
        );
    }
    println!(
        "throughput {:.2} IPC → gain {:.2}x over single-threaded",
        out.throughput_ipc(),
        out.throughput_gain()
    );
    Ok(())
}

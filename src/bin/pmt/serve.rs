//! `pmt serve` — run the prediction daemon.
//!
//! Profiles come from two places, both loaded before the socket opens:
//! `--profile-file FILE` (repeatable; a profile written by
//! `pmt profile --out`) and `--workloads a,b,c` (profiled in-process at
//! `--instructions` scale). Each is registered under the profile's own
//! name, prepared once, and shared read-only by every worker thread.
//! Everything after that is HTTP: see `docs/API.md` for the endpoints.

use crate::args::{CliError, Command, Flag};
use crate::commands::api_err;
use pmt::serve::{Registry, ServeConfig, Server};
use std::sync::Arc;

pub const SERVE: Command = Command {
    name: "serve",
    about: "serve predictions over HTTP (versioned wire API)",
    positionals: "",
    flags: &[
        Flag::value(
            "--addr",
            "HOST:PORT",
            "listen address (default 127.0.0.1:7071, port 0 = any)",
        ),
        Flag::value(
            "--profile-file",
            "FILE",
            "register a profile JSON at startup (repeatable)",
        ),
        Flag::value(
            "--workloads",
            "A,B,C",
            "profile + register these workloads at startup",
        ),
        Flag::value(
            "--instructions",
            "N",
            "instructions per --workloads profile (default 1000000)",
        ),
        Flag::value("--threads", "N", "worker threads (default 4)"),
        Flag::value(
            "--max-inflight",
            "N",
            "concurrent explore sweeps before 429 (default 2)",
        ),
        Flag::value(
            "--max-points",
            "N",
            "largest admitted space, in points (default 4000000)",
        ),
        Flag::value(
            "--retry-after",
            "S",
            "Retry-After seconds on 429 (default 2)",
        ),
        Flag::value(
            "--cache-entries",
            "N",
            "response cache capacity (default 64)",
        ),
        Flag::value("--max-profiles", "N", "registry capacity (default 64)"),
        Flag::value(
            "--batch-window-ms",
            "MS",
            "predict micro-batch collection window; 0 disables (default 5)",
        ),
        Flag::value(
            "--batch-max-points",
            "N",
            "design points per batch flight before early close (default 64)",
        ),
        Flag::value(
            "--corrector",
            "FILE",
            "residual corrector (from `pmt train`) applied to covered predicts",
        ),
    ],
};

/// Signal-to-shutdown plumbing, dependency-free: an async-signal-safe
/// handler flips an atomic, and a watcher thread turns that into a
/// [`StopHandle::request_stop`] (which is not safe to call from a
/// handler — it allocates and takes locks).
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP_REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        STOP_REQUESTED.store(true, Ordering::Release);
    }

    pub fn install() {
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = match SERVE.parse(args)? {
        Some(parsed) => parsed,
        None => return Ok(()),
    };

    // The corrector is boot-time configuration, deliberately: every
    // worker shares one immutable model, so cached responses can never
    // disagree with freshly computed ones.
    let corrector = match parsed.value("--corrector") {
        Some(path) => {
            let json = std::fs::read_to_string(path)
                .map_err(|e| CliError::Runtime(format!("reading {path}: {e}")))?;
            let model = pmt::ml::ResidualModel::from_json(&json)
                .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
            eprintln!(
                "corrector loaded from {path} ({} training rows, {} workloads)",
                model.rows_total,
                model.profiles.len()
            );
            Some(Arc::new(model))
        }
        None => None,
    };

    let defaults = ServeConfig::default();
    let config = ServeConfig {
        addr: parsed.value("--addr").unwrap_or(&defaults.addr).to_string(),
        threads: parsed.parsed_or("--threads", "a thread count", defaults.threads)?,
        max_inflight_sweeps: parsed.parsed_or(
            "--max-inflight",
            "a sweep count",
            defaults.max_inflight_sweeps,
        )?,
        max_space_points: parsed.parsed_or(
            "--max-points",
            "a point count",
            defaults.max_space_points,
        )?,
        retry_after_s: parsed.parsed_or("--retry-after", "seconds", defaults.retry_after_s)?,
        response_cache_entries: parsed.parsed_or(
            "--cache-entries",
            "an entry count",
            defaults.response_cache_entries,
        )?,
        max_profiles: parsed.parsed_or(
            "--max-profiles",
            "a profile count",
            defaults.max_profiles,
        )?,
        batch_window_ms: parsed.parsed_or(
            "--batch-window-ms",
            "milliseconds",
            defaults.batch_window_ms,
        )?,
        batch_max_points: parsed.parsed_or(
            "--batch-max-points",
            "a point count",
            defaults.batch_max_points,
        )?,
        corrector,
        ..defaults
    };

    let registry = Arc::new(Registry::new(config.max_profiles));
    for path in parsed.values("--profile-file") {
        let profile = crate::read_profile(path)?;
        let ack = registry.register(profile).map_err(api_err)?;
        eprintln!(
            "registered `{}` from {path} ({} instructions, {} micro-traces)",
            ack.name, ack.total_instructions, ack.micro_traces
        );
    }
    if let Some(list) = parsed.value("--workloads") {
        let n = parsed.parsed_or("--instructions", "an instruction count", 1_000_000)?;
        for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let profile = crate::profile_workload(name, n)?;
            let ack = registry.register(profile).map_err(api_err)?;
            eprintln!("registered `{}` ({n} instructions profiled)", ack.name);
        }
    }

    let server = Server::start(config, registry)
        .map_err(|e| CliError::Runtime(format!("starting server: {e}")))?;
    // The smoke script scrapes this line for the picked port.
    println!("pmt serve listening on http://{}", server.addr());
    eprintln!("endpoints: /healthz /metrics /v1/profiles /v1/predict /v1/explore");

    // Graceful shutdown: SIGINT/SIGTERM close the listener, connections
    // already accepted are drained, and the process exits 0.
    #[cfg(unix)]
    {
        signals::install();
        let stop = server.stop_handle();
        std::thread::spawn(move || loop {
            if signals::STOP_REQUESTED.load(std::sync::atomic::Ordering::Acquire) {
                eprintln!("pmt serve: signal received, draining");
                stop.request_stop();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }

    server.join();
    eprintln!("pmt serve: drained, exiting");
    Ok(())
}

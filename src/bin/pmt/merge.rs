//! `pmt merge` — fold shard snapshots back into one `ExploreResponse`.
//!
//! The inputs are the [`AccumulatorSnapshot`] files that
//! `pmt explore --shard I/N --snapshot-out FILE` writes. Merging replays
//! the single-process fold exactly — per-chunk moments in global chunk
//! order, Pareto/top-K as order-independent sets — so the merged
//! response (`--out`) is **byte-identical** to the file the equivalent
//! unsharded `pmt explore --out` run writes. CI's shard-smoke job
//! asserts this, including for a shard that was SIGKILLed mid-sweep and
//! resumed from its checkpoint.

use crate::args::{CliError, Command, Flag};
use crate::commands::api_err;
use pmt::api::AccumulatorSnapshot;

pub const MERGE: Command = Command {
    name: "merge",
    about: "merge shard snapshots into one explore response",
    positionals: "<snapshot.json>...",
    flags: &[Flag::value(
        "--out",
        "FILE",
        "write the merged wire-schema ExploreResponse here",
    )],
};

pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = match MERGE.parse(args)? {
        Some(parsed) => parsed,
        None => return Ok(()),
    };
    let paths = parsed.positionals();
    if paths.is_empty() {
        return Err(CliError::Usage(
            "`pmt merge` needs at least one snapshot file (see `pmt merge --help`)".to_string(),
        ));
    }

    let mut snapshots: Vec<AccumulatorSnapshot> = Vec::with_capacity(paths.len());
    for path in paths {
        let json = std::fs::read_to_string(path)
            .map_err(|e| CliError::Runtime(format!("reading {path}: {e}")))?;
        let snap: AccumulatorSnapshot = serde_json::from_str(&json)
            .map_err(|e| CliError::Runtime(format!("parsing {path}: {e}")))?;
        snapshots.push(snap);
    }

    eprintln!(
        "merging {} shard snapshot{}...",
        snapshots.len(),
        if snapshots.len() == 1 { "" } else { "s" }
    );
    let space_label = snapshots[0].request.space.label();
    let resp = pmt::serve::engine::merge_response(&snapshots).map_err(api_err)?;
    crate::explore::print_response(&resp, &space_label);

    if let Some(path) = parsed.value("--out") {
        let json = serde_json::to_string(&resp).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("merged explore response -> {path}");
    }
    Ok(())
}

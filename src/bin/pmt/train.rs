//! `pmt train` — train a learned residual corrector from a validation
//! sweep.
//!
//! The command runs exactly the (workload × design point) grid
//! `pmt validate` would — same flags, same memoized simulation cache —
//! but instead of a report it emits one supervised row per simulated
//! point ([`pmt::validate::Validator::training_data`]) and fits the
//! ridge corrector of [`pmt::ml`] to the relative CPI/power residuals.
//! `--out` receives the versioned [`pmt::ml::ResidualModel`] JSON
//! artifact, which `pmt validate --corrector`, `pmt explore --corrector`
//! and `pmt serve --corrector` then apply.
//!
//! Training is bit-deterministic: a fixed `--seed` drives the
//! train/test split, accumulation is chunk-ordered, and the rows arrive
//! in deterministic workload-major point order — so two independent
//! runs over the same grid write byte-identical artifacts (CI's
//! fusion-smoke job asserts exactly this).

use crate::args::{CliError, Command, Flag};
use pmt::ml::TrainOptions;
use pmt::prelude::*;

pub const TRAIN: Command = Command {
    name: "train",
    about: "train a residual corrector from a validation sweep",
    positionals: "",
    flags: &[
        Flag::value(
            "--workloads",
            "A,B|all",
            "comma list of workloads (default astar,mcf,…)",
        ),
        Flag::value("--space", "NAME", "full | validation | small"),
        Flag::value("--instructions", "N", "profile instructions per workload"),
        Flag::value(
            "--sim-instructions",
            "N",
            "simulated instructions per point",
        ),
        Flag::value("--out", "FILE", "write the ResidualModel JSON here"),
        Flag::value("--cache", "FILE", "memoized simulation cache to load/save"),
        Flag::value("--seed", "N", "train/test split seed (default 42)"),
        Flag::value("--lambda", "F", "ridge penalty (default 0.001)"),
        Flag::value(
            "--test-fraction",
            "F",
            "held-out fraction in [0,0.9] (default 0.25)",
        ),
        Flag::switch("--smoke", "tiny CI scale"),
    ],
};

pub fn run(args: &[String]) -> Result<(), CliError> {
    use pmt::validate::{ValidationConfig, Validator};
    let parsed = match TRAIN.parse(args)? {
        Some(parsed) => parsed,
        None => return Ok(()),
    };
    let Some(out) = parsed.value("--out") else {
        return Err(CliError::Usage(
            "`pmt train` needs `--out FILE` (the corrector artifact is the whole point)"
                .to_string(),
        ));
    };
    let smoke = parsed.switch("--smoke");

    // The grid is parsed exactly like `pmt validate`'s: a corrector must
    // be trained on the same rows validation grades it on.
    let mut config = if smoke {
        ValidationConfig::smoke()
    } else {
        ValidationConfig::default_scale()
    };
    if let Some(n) = parsed.parsed("--instructions", "an instruction count")? {
        config.profile_instructions = n;
    }
    if let Some(n) = parsed.parsed("--sim-instructions", "an instruction count")? {
        config.sim_instructions = n;
    }

    let space_name = parsed
        .value("--space")
        .unwrap_or(if smoke { "validation" } else { "full" });
    let space = match space_name {
        "full" => DesignSpace::thesis_table_6_3(),
        "validation" => DesignSpace::validation_subspace(),
        "small" => DesignSpace::small(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown space `{other}` for `--space` (full|validation|small)"
            )))
        }
    };

    let default_workloads = if smoke {
        "astar,mcf"
    } else {
        "astar,gcc,mcf,milc"
    };
    let workloads = parsed.value("--workloads").unwrap_or(default_workloads);
    let names: Vec<&str> = if workloads == "all" {
        SUITE.to_vec()
    } else {
        workloads.split(',').map(str::trim).collect()
    };

    let defaults = TrainOptions::default();
    let options = TrainOptions {
        seed: parsed.parsed_or("--seed", "a split seed", defaults.seed)?,
        lambda: parsed.parsed_or("--lambda", "a positive penalty", defaults.lambda)?,
        test_fraction: parsed.parsed_or(
            "--test-fraction",
            "a fraction in [0, 0.9]",
            defaults.test_fraction,
        )?,
    };

    let mut validator = Validator::new(config.clone()).space(&space);
    for name in &names {
        validator = validator.workload_named(name)?;
    }
    let cache_path = parsed.value("--cache");
    if let Some(path) = cache_path {
        if std::path::Path::new(path).exists() {
            validator = validator.cache(std::sync::Arc::new(SimCache::load(path)?));
        }
    }

    eprintln!(
        "training rows: {} workloads x {} points ({} sim instructions each)...",
        names.len(),
        space.len(),
        config.sim_instructions
    );
    let data = validator.training_data();
    let model = pmt::ml::train(&data.rows, &data.profiles, &options)
        .map_err(|e| CliError::Runtime(e.to_string()))?;

    println!(
        "trained on {} rows ({} train / {} held out), seed {}, lambda {}",
        model.rows_total, model.rows_train, model.rows_test, model.seed, model.lambda
    );
    println!(
        "train mean |CPI error|: {:.2}% analytical -> {:.2}% corrected",
        model.train_mean_abs_cpi_before * 100.0,
        model.train_mean_abs_cpi_after * 100.0
    );
    if model.rows_test > 0 {
        println!(
            "held-out mean |CPI error|: {:.2}% analytical -> {:.2}% corrected",
            model.test_mean_abs_cpi_before * 100.0,
            model.test_mean_abs_cpi_after * 100.0
        );
    }

    if let Some(path) = cache_path {
        validator.shared_cache().save(path)?;
        eprintln!("simulation cache -> {path}");
    }
    std::fs::write(out, model.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("corrector artifact -> {out}");
    Ok(())
}

//! `pmt explore` — stream a (possibly huge) design space through the
//! online accumulators: Pareto frontier, top-K, moments, in bounded
//! memory.
//!
//! The command is a thin shell around the wire schema: flags build an
//! [`ExploreRequest`], [`pmt::serve::engine::explore_response`] answers
//! it — the *same* function the daemon calls — and `--out` writes the
//! [`ExploreResponse`] verbatim. That is what makes the file
//! byte-identical to the body a running `pmt serve` returns for the same
//! request (CI's serve-smoke job asserts exactly this, using
//! `--emit-request` to capture the request it replays over HTTP).

use crate::args::{CliError, Command, Flag};
use crate::commands::api_err;
use pmt::dse::{DesignConstraints, Objective};
use pmt::prelude::*;

pub const EXPLORE: Command = Command {
    name: "explore",
    about: "streaming sweep of a large (lazy) design space",
    positionals: "",
    flags: &[
        Flag::value(
            "--profile",
            "FILE",
            "application profile JSON (from `pmt profile`)",
        ),
        Flag::value(
            "--space",
            "NAME",
            "thesis | validation | small | big (103,680-point demo)",
        ),
        Flag::value("--top", "K", "keep the K best designs (default 10)"),
        Flag::value(
            "--objective",
            "OBJ",
            "seconds | cpi | power | energy | edp | ed2p",
        ),
        Flag::value("--max-power", "W", "skip designs over this power budget"),
        Flag::value(
            "--max-seconds",
            "S",
            "skip designs over this runtime budget",
        ),
        Flag::value("--max-width", "N", "pre-filter: dispatch width at most N"),
        Flag::value("--max-rob", "N", "pre-filter: ROB at most N entries"),
        Flag::value("--max-l3-kb", "N", "pre-filter: L3 at most N KB"),
        Flag::value(
            "--out",
            "FILE",
            "write the wire-schema ExploreResponse here",
        ),
        Flag::value(
            "--emit-request",
            "FILE",
            "also write the ExploreRequest this run answers",
        ),
    ],
};

pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = match EXPLORE.parse(args)? {
        Some(parsed) => parsed,
        None => return Ok(()),
    };
    let profile = crate::load_profile(&parsed, "explore")?;

    // Flags → the versioned wire request.
    let space_name = parsed.value("--space").unwrap_or("big");
    let mut req = ExploreRequest::new(&profile.name, SpaceSpec::named(space_name));
    req.top_k = parsed.parsed_or("--top", "a count", 10)?;
    if let Some(objective) = parsed.value("--objective") {
        req.objective = objective.to_string();
    }
    req.max_power_w = parsed.parsed("--max-power", "watts")?;
    req.max_seconds = parsed.parsed("--max-seconds", "seconds")?;
    let mut constraints = DesignConstraints::new();
    if let Some(w) = parsed.parsed::<u32>("--max-width", "a dispatch width")? {
        constraints = constraints.max_dispatch_width(w);
    }
    if let Some(r) = parsed.parsed::<u32>("--max-rob", "an entry count")? {
        constraints = constraints.max_rob(r);
    }
    if let Some(kb) = parsed.parsed::<u32>("--max-l3-kb", "a size in KB")? {
        constraints = constraints.max_l3_kb(kb);
    }
    if !constraints.is_unconstrained() {
        req.constraints = Some(constraints);
    }
    if let Some(path) = parsed.value("--emit-request") {
        let json = serde_json::to_string(&req).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wire request -> {path}");
    }

    eprintln!("streaming space `{space_name}` for {}...", profile.name);
    let prepared = PreparedProfile::new(&profile);
    let resp = pmt::serve::engine::explore_response(&prepared, &req).map_err(api_err)?;
    let summary = &resp.summary;

    println!("workload    : {}", resp.workload);
    println!(
        "space       : {space_name} ({} points)",
        summary.space_points
    );
    println!(
        "evaluated   : {}  (pre-filtered {}, over budget {})",
        summary.evaluated, summary.rejected, summary.over_budget
    );
    let stat = |name: &str, m: &pmt::model::Moments| {
        println!(
            "{name:<12}: mean {:.3}  min {:.3}  max {:.3}",
            m.mean(),
            m.min,
            m.max
        );
    };
    stat("CPI", &summary.cpi);
    stat("power (W)", &summary.power);
    stat("time (ms)", &{
        let mut ms = summary.seconds;
        ms.sum *= 1e3;
        ms.min *= 1e3;
        ms.max *= 1e3;
        ms
    });

    println!(
        "frontier    : {} non-dominated designs",
        summary.frontier.len()
    );
    const SHOWN: usize = 20;
    println!(
        "{:>8} {:>34} {:>10} {:>9} {:>9}",
        "id", "design", "ms", "watts", "CPI"
    );
    for (e, name) in summary
        .frontier
        .iter()
        .zip(&resp.frontier_machines)
        .take(SHOWN)
    {
        println!(
            "{:>8} {:>34} {:>10.3} {:>9.2} {:>9.3}",
            e.id,
            name,
            e.item.seconds * 1e3,
            e.item.power,
            e.item.cpi
        );
    }
    if summary.frontier.len() > SHOWN {
        println!(
            "  ... {} more (write --out FILE for all)",
            summary.frontier.len() - SHOWN
        );
    }

    let label = Objective::from_name(&resp.objective)
        .map(|o| o.label())
        .unwrap_or(&resp.objective);
    println!("top {} by {}:", summary.top.len(), label);
    for (e, name) in summary.top.iter().zip(&resp.top_machines) {
        println!("{:>8} {:>34}  {} = {:.4}", e.id, name, label, e.key);
    }

    if let Some(path) = parsed.value("--out") {
        let json = serde_json::to_string(&resp).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("explore response -> {path}");
    }
    Ok(())
}

//! `pmt explore` — stream a (possibly huge) design space through the
//! online accumulators: Pareto frontier, top-K, moments, in bounded
//! memory.
//!
//! The command is a thin shell around the wire schema: flags build an
//! [`ExploreRequest`], [`pmt::serve::engine::explore_response`] answers
//! it — the *same* function the daemon calls — and `--out` writes the
//! [`ExploreResponse`] verbatim. That is what makes the file
//! byte-identical to the body a running `pmt serve` returns for the same
//! request (CI's serve-smoke job asserts exactly this, using
//! `--emit-request` to capture the request it replays over HTTP).
//!
//! # Sharded sweeps
//!
//! `--shard I/N` folds only shard I's contiguous slice of the global
//! chunk list and writes an
//! [`AccumulatorSnapshot`](pmt::api::AccumulatorSnapshot) to
//! `--snapshot-out` instead of a response; `pmt merge` folds N such
//! snapshots into the byte-identical `ExploreResponse` a single-process
//! run writes. `--checkpoint FILE` additionally persists the running
//! snapshot every `--checkpoint-every` chunks (atomically, via
//! temp-file rename), and `--resume FILE` continues a killed shard from
//! its last completed chunk. See "Sharded sweeps" in
//! `docs/ARCHITECTURE.md` for the determinism contract.

use crate::args::{CliError, Command, Flag};
use crate::commands::api_err;
use pmt::api::AccumulatorSnapshot;
use pmt::dse::{DesignConstraints, Objective};
use pmt::prelude::*;

pub const EXPLORE: Command = Command {
    name: "explore",
    about: "streaming sweep of a large (lazy) design space",
    positionals: "",
    flags: &[
        Flag::value(
            "--profile",
            "FILE",
            "application profile JSON (from `pmt profile`)",
        ),
        Flag::value(
            "--space",
            "NAME",
            "thesis | validation | small | big (103,680-point demo)",
        ),
        Flag::value("--top", "K", "keep the K best designs (default 10)"),
        Flag::value(
            "--objective",
            "OBJ",
            "seconds | cpi | power | energy | edp | ed2p",
        ),
        Flag::value("--max-power", "W", "skip designs over this power budget"),
        Flag::value(
            "--max-seconds",
            "S",
            "skip designs over this runtime budget",
        ),
        Flag::value("--max-width", "N", "pre-filter: dispatch width at most N"),
        Flag::value("--max-rob", "N", "pre-filter: ROB at most N entries"),
        Flag::value("--max-l3-kb", "N", "pre-filter: L3 at most N KB"),
        Flag::value(
            "--out",
            "FILE",
            "write the wire-schema ExploreResponse here",
        ),
        Flag::value(
            "--corrector",
            "FILE",
            "residual corrector (from `pmt train`): also print corrected top-K",
        ),
        Flag::value(
            "--emit-request",
            "FILE",
            "also write the ExploreRequest this run answers",
        ),
        Flag::value(
            "--shard",
            "I/N",
            "fold only shard I of N (writes a snapshot; see `pmt merge`)",
        ),
        Flag::value(
            "--snapshot-out",
            "FILE",
            "write the shard's AccumulatorSnapshot here",
        ),
        Flag::value(
            "--checkpoint",
            "FILE",
            "persist the running snapshot here (atomic rename)",
        ),
        Flag::value(
            "--checkpoint-every",
            "N",
            "chunks between checkpoints (default 8)",
        ),
        Flag::value(
            "--resume",
            "FILE",
            "resume a killed shard from this checkpoint/snapshot",
        ),
    ],
};

pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = match EXPLORE.parse(args)? {
        Some(parsed) => parsed,
        None => return Ok(()),
    };
    let profile = crate::load_profile(&parsed, "explore")?;

    // Flags → the versioned wire request.
    let space_name = parsed.value("--space").unwrap_or("big");
    let mut req = ExploreRequest::new(&profile.name, SpaceSpec::named(space_name));
    req.top_k = parsed.parsed_or("--top", "a count", 10)?;
    if let Some(objective) = parsed.value("--objective") {
        req.objective = objective.to_string();
    }
    req.max_power_w = parsed.parsed("--max-power", "watts")?;
    req.max_seconds = parsed.parsed("--max-seconds", "seconds")?;
    let mut constraints = DesignConstraints::new();
    if let Some(w) = parsed.parsed::<u32>("--max-width", "a dispatch width")? {
        constraints = constraints.max_dispatch_width(w);
    }
    if let Some(r) = parsed.parsed::<u32>("--max-rob", "an entry count")? {
        constraints = constraints.max_rob(r);
    }
    if let Some(kb) = parsed.parsed::<u32>("--max-l3-kb", "a size in KB")? {
        constraints = constraints.max_l3_kb(kb);
    }
    if !constraints.is_unconstrained() {
        req.constraints = Some(constraints);
    }
    if let Some(path) = parsed.value("--emit-request") {
        let json = serde_json::to_string(&req).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wire request -> {path}");
    }

    let sharded = parsed.value("--shard").is_some()
        || parsed.value("--resume").is_some()
        || parsed.value("--snapshot-out").is_some();
    if sharded && parsed.value("--corrector").is_some() {
        return Err(CliError::Usage(
            "`--corrector` applies to a full run's survivors — shard runs write raw \
             snapshots; pass it to the plain `pmt explore` over the merged space instead"
                .to_string(),
        ));
    }

    // Load (and sanity-check) the corrector *before* the sweep: a wrong
    // schema version or a profile the model was never trained over must
    // fail fast, not after minutes of folding. The sweep itself never
    // sees the corrector — correction is applied to the survivors after
    // the fold, so `--out` bytes are identical with or without it.
    let corrector = match parsed.value("--corrector") {
        Some(path) => {
            let model = pmt::ml::ResidualModel::from_json(
                &std::fs::read_to_string(path)
                    .map_err(|e| CliError::Runtime(format!("reading {path}: {e}")))?,
            )
            .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
            model
                .check_profile(&profile.name, &pmt::ml::profile_fingerprint(&profile))
                .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
            Some(model)
        }
        None => None,
    };

    if sharded {
        return run_shard(&parsed, &profile, &req);
    }
    for flag in ["--checkpoint", "--checkpoint-every"] {
        if parsed.value(flag).is_some() {
            return Err(CliError::Usage(format!(
                "`{flag}` only applies to sharded runs (add `--shard I/N --snapshot-out FILE`)"
            )));
        }
    }

    eprintln!("streaming space `{space_name}` for {}...", profile.name);
    let prepared = PreparedProfile::new(&profile);
    let resp = pmt::serve::engine::explore_response(&prepared, &req).map_err(api_err)?;
    print_response(&resp, space_name);

    if let Some(model) = &corrector {
        let space = req.space.resolve().map_err(api_err)?;
        let corrected = pmt::dse::corrected_top(&resp.summary, space.as_ref(), model, &profile);
        println!(
            "top {} with the learned residual applied (ranking unchanged):",
            corrected.len()
        );
        println!(
            "{:>8} {:>34} {:>9} {:>9} {:>9} {:>9}",
            "id", "design", "CPI", "corr CPI", "watts", "corr W"
        );
        for (c, name) in corrected.iter().zip(&resp.top_machines) {
            println!(
                "{:>8} {:>34} {:>9.3} {:>9.3} {:>9.2} {:>9.2}",
                c.id, name, c.cpi, c.corrected_cpi, c.power_w, c.corrected_power_w
            );
        }
    }

    if let Some(path) = parsed.value("--out") {
        let json = serde_json::to_string(&resp).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("explore response -> {path}");
    }
    Ok(())
}

/// The sharded path: fold one shard's chunk range, checkpoint along the
/// way, write the final snapshot for `pmt merge`.
fn run_shard(
    parsed: &crate::args::Parsed,
    profile: &pmt::profiler::ApplicationProfile,
    req: &ExploreRequest,
) -> Result<(), CliError> {
    if parsed.value("--out").is_some() {
        return Err(CliError::Usage(
            "a shard run writes a snapshot, not a response — drop `--out` here and use \
             `pmt merge ... --out FILE` on the shard snapshots instead"
                .to_string(),
        ));
    }
    let Some(snapshot_out) = parsed.value("--snapshot-out") else {
        return Err(CliError::Usage(
            "sharded runs need `--snapshot-out FILE` (the file `pmt merge` folds)".to_string(),
        ));
    };

    let resume: Option<AccumulatorSnapshot> = match parsed.value("--resume") {
        Some(path) => {
            let json = std::fs::read_to_string(path)
                .map_err(|e| CliError::Runtime(format!("reading {path}: {e}")))?;
            let snap: AccumulatorSnapshot = serde_json::from_str(&json)
                .map_err(|e| CliError::Runtime(format!("parsing {path}: {e}")))?;
            Some(snap)
        }
        None => None,
    };
    // Shard coordinates come from --shard I/N, or from the checkpoint
    // being resumed; given both, the engine validates they agree.
    let (shard_index, shard_count) = match (parsed.value("--shard"), &resume) {
        (Some(s), _) => parse_shard(s)?,
        (None, Some(snap)) => (snap.shard_index, snap.shard_count),
        (None, None) => {
            return Err(CliError::Usage(
                "`--snapshot-out` needs `--shard I/N` (or `--resume FILE` to infer it)".to_string(),
            ));
        }
    };

    let checkpoint = parsed.value("--checkpoint");
    let checkpoint_every: usize = parsed.parsed_or("--checkpoint-every", "a chunk count", 8)?;
    // Without a checkpoint file there is nowhere to persist intermediate
    // state, so fold the whole shard in one batch.
    let every = if checkpoint.is_some() {
        checkpoint_every.max(1)
    } else {
        0
    };

    eprintln!(
        "streaming shard {shard_index}/{shard_count} of space `{}` for {}...",
        req.space.label(),
        profile.name
    );
    let prepared = PreparedProfile::new(profile);
    let mut checkpoint_error: Option<CliError> = None;
    let snap = pmt::serve::engine::explore_shard(
        &prepared,
        req,
        shard_index,
        shard_count,
        resume.as_ref(),
        every,
        |running| {
            if let (Some(path), None) = (checkpoint, &checkpoint_error) {
                match serde_json::to_string(running) {
                    Ok(json) => {
                        if let Err(e) = write_atomic(path, &json) {
                            checkpoint_error = Some(e);
                        }
                    }
                    Err(e) => checkpoint_error = Some(CliError::Runtime(e.to_string())),
                }
            }
        },
    )
    .map_err(api_err)?;
    if let Some(e) = checkpoint_error {
        return Err(e);
    }

    let json = serde_json::to_string(&snap).map_err(|e| e.to_string())?;
    write_atomic(snapshot_out, &json)?;
    let shard = &snap.shard;
    println!(
        "shard {shard_index}/{shard_count}: chunks {}..{} of {} points \
         (evaluated {}, pre-filtered {}, over budget {})",
        shard.chunk_lo,
        shard.chunk_hi,
        shard.space_points,
        shard.evaluated,
        shard.rejected,
        shard.over_budget
    );
    println!(
        "kept        : {} frontier candidates, {} top-{} candidates",
        shard.frontier.len(),
        shard.top.len(),
        shard.top_k
    );
    eprintln!("shard snapshot -> {snapshot_out}");
    eprintln!("merge with  : pmt merge {} ... --out FILE", snapshot_out);
    Ok(())
}

/// Parse `--shard I/N`.
fn parse_shard(s: &str) -> Result<(usize, usize), CliError> {
    let err = || {
        CliError::Usage(format!(
            "`--shard` wants I/N with I < N (e.g. 0/3), got `{s}`"
        ))
    };
    let (i, n) = s.split_once('/').ok_or_else(err)?;
    let i: usize = i.trim().parse().map_err(|_| err())?;
    let n: usize = n.trim().parse().map_err(|_| err())?;
    if n == 0 || i >= n {
        return Err(err());
    }
    Ok((i, n))
}

/// Write `contents` to `path` atomically: a temp file in the same
/// directory, then rename. A reader (or a resume after SIGKILL) sees
/// either the previous complete file or the new complete file, never a
/// torn write.
pub fn write_atomic(path: &str, contents: &str) -> Result<(), CliError> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).map_err(|e| CliError::Runtime(format!("writing {tmp}: {e}")))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| CliError::Runtime(format!("renaming {tmp} -> {path}: {e}")))
}

/// The human-readable report of an [`ExploreResponse`] — shared by
/// `pmt explore` and `pmt merge`.
pub fn print_response(resp: &ExploreResponse, space_name: &str) {
    let summary = &resp.summary;
    println!("workload    : {}", resp.workload);
    println!(
        "space       : {space_name} ({} points)",
        summary.space_points
    );
    println!(
        "evaluated   : {}  (pre-filtered {}, over budget {})",
        summary.evaluated, summary.rejected, summary.over_budget
    );
    let stat = |name: &str, m: &pmt::model::Moments| {
        println!(
            "{name:<12}: mean {:.3}  min {:.3}  max {:.3}",
            m.mean(),
            m.min,
            m.max
        );
    };
    stat("CPI", &summary.cpi);
    stat("power (W)", &summary.power);
    stat("time (ms)", &{
        let mut ms = summary.seconds;
        ms.sum *= 1e3;
        ms.min *= 1e3;
        ms.max *= 1e3;
        ms
    });

    println!(
        "frontier    : {} non-dominated designs",
        summary.frontier.len()
    );
    const SHOWN: usize = 20;
    println!(
        "{:>8} {:>34} {:>10} {:>9} {:>9}",
        "id", "design", "ms", "watts", "CPI"
    );
    for (e, name) in summary
        .frontier
        .iter()
        .zip(&resp.frontier_machines)
        .take(SHOWN)
    {
        println!(
            "{:>8} {:>34} {:>10.3} {:>9.2} {:>9.3}",
            e.id,
            name,
            e.item.seconds * 1e3,
            e.item.power,
            e.item.cpi
        );
    }
    if summary.frontier.len() > SHOWN {
        println!(
            "  ... {} more (write --out FILE for all)",
            summary.frontier.len() - SHOWN
        );
    }

    let label = Objective::from_name(&resp.objective)
        .map(|o| o.label())
        .unwrap_or(&resp.objective);
    println!("top {} by {}:", summary.top.len(), label);
    for (e, name) in summary.top.iter().zip(&resp.top_machines) {
        println!("{:>8} {:>34}  {} = {:.4}", e.id, name, label, e.key);
    }
}

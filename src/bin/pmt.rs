//! `pmt` — the command-line front-end of the framework, mirroring the
//! paper's open-sourced AIP (profiler) + PMT (modeling tool) pair.
//!
//! ```console
//! $ pmt list
//! $ pmt profile mcf --instructions 1000000 --out mcf.profile.json
//! $ pmt predict --profile mcf.profile.json --machine nehalem
//! $ pmt simulate mcf --instructions 200000
//! $ pmt sweep --profile mcf.profile.json
//! $ pmt corun milc mcf --instructions 200000
//! $ pmt validate --workloads astar,mcf --smoke
//! ```

use pmt::dse::{
    DesignConstraints, LazyDesignSpace, Objective, ParetoFront, ProductSpace, SpaceEvaluation,
    StreamingSweep, SweepConfig,
};
use pmt::model::{MulticoreModel, SmtModel};
use pmt::prelude::*;
use pmt::profiler::ApplicationProfile;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "list" => cmd_list(),
        "profile" => cmd_profile(&args[1..]),
        "predict" => cmd_predict(&args[1..]),
        "simulate" => cmd_simulate(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "explore" => cmd_explore(&args[1..]),
        "validate" => cmd_validate(&args[1..]),
        "report" => cmd_report(&args[1..]),
        "corun" => cmd_corun(&args[1..]),
        "smt" => cmd_smt(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
pmt — micro-architecture independent processor performance & power modeling

USAGE:
  pmt list                                       list the workload suite
  pmt profile <workload> [--instructions N] [--out FILE]
                                                 profile once (AIP step)
  pmt predict --profile FILE [--machine M]       predict CPI stack + power
  pmt simulate <workload> [--instructions N] [--machine M]
                                                 cycle-level ground truth
  pmt sweep --profile FILE                       243-point Pareto sweep
  pmt explore --profile FILE [--space thesis|validation|small|big]
              [--top K] [--objective seconds|cpi|power|energy|edp|ed2p]
              [--max-power W] [--max-seconds S] [--max-width N]
              [--max-rob N] [--max-l3-kb N] [--serial] [--out FILE]
                                                 streaming sweep of a large
                                                 (lazy) design space: online
                                                 Pareto frontier + top-K in
                                                 bounded memory (`big` is the
                                                 103,680-point demo space)
  pmt validate [--workloads a,b|all] [--space full|validation|small]
               [--instructions N] [--sim-instructions N] [--out FILE]
               [--cache FILE] [--max-mean-cpi-error F] [--smoke]
                                                 model-vs-simulator accuracy
                                                 report (memoized sim runs)
  pmt report [--out-dir DIR] [--cache FILE] [--smoke]
                                                 regenerate docs/REPRODUCTION.md,
                                                 docs/figures/*.svg and
                                                 docs/PAPER_MAP.md (full
                                                 profile→predict→sweep→validate
                                                 pass; deterministic output)
  pmt corun <w1> <w2> [..] [--instructions N]    shared-LLC co-run model
  pmt smt <w1> <w2> [..] [--instructions N]      SMT (shared-core) model

MACHINES: nehalem (default) | nehalem-pf | low-power";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn instructions(args: &[String]) -> u64 {
    flag(args, "--instructions")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

fn machine(args: &[String]) -> Result<MachineConfig, String> {
    match flag(args, "--machine").as_deref().unwrap_or("nehalem") {
        "nehalem" => Ok(MachineConfig::nehalem()),
        "nehalem-pf" => Ok(MachineConfig::nehalem_with_prefetcher()),
        "low-power" => Ok(MachineConfig::low_power()),
        other => Err(format!("unknown machine `{other}`")),
    }
}

fn workload(name: &str) -> Result<WorkloadSpec, String> {
    WorkloadSpec::by_name(name).ok_or_else(|| format!("unknown workload `{name}` — try `pmt list`"))
}

fn profile_workload(name: &str, n: u64) -> Result<ApplicationProfile, String> {
    let spec = workload(name)?;
    let mut cfg = ProfilerConfig::thesis_default();
    // Scale the window so even short runs yield many micro-traces.
    cfg.sampling = pmt::trace::SamplingConfig {
        micro_trace_instructions: 1_000,
        window_instructions: (n / 100).clamp(1_000, 1_000_000),
    };
    Ok(Profiler::new(cfg).profile_named(name, &mut spec.trace(n)))
}

fn cmd_list() -> Result<(), String> {
    println!("the 29 SPEC CPU 2006 stand-ins:");
    for name in SUITE {
        println!("  {name}");
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let name = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("profile needs a workload name")?;
    let n = instructions(args);
    let profile = profile_workload(name, n)?;
    let json = serde_json::to_string(&profile).map_err(|e| e.to_string())?;
    match flag(args, "--out") {
        Some(path) => {
            std::fs::write(&path, &json).map_err(|e| format!("writing {path}: {e}"))?;
            println!(
                "profiled {} instructions of {name} → {path} ({} micro-traces, {} bytes)",
                profile.total_instructions,
                profile.micro_traces.len(),
                json.len()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn load_profile(args: &[String]) -> Result<ApplicationProfile, String> {
    let path = flag(args, "--profile").ok_or("missing --profile FILE")?;
    let json = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))
}

fn cmd_predict(args: &[String]) -> Result<(), String> {
    let profile = load_profile(args)?;
    let m = machine(args)?;
    let prediction = IntervalModel::new(&m).predict(&profile);
    let power = PowerModel::new(&m).power(&prediction.activity);
    println!("workload   : {}", profile.name);
    println!("machine    : {}", m.name);
    println!(
        "CPI        : {:.3}  (IPC {:.2}, MLP {:.2})",
        prediction.cpi(),
        prediction.ipc(),
        prediction.mlp
    );
    for (c, v) in prediction.cpi_stack.iter() {
        if v > 0.0005 {
            println!("  {:<8} {:.3}", c.label(), v);
        }
    }
    println!(
        "power      : {:.1} W  ({:.1} W static, {:.0}%)",
        power.total(),
        power.static_w,
        power.static_fraction() * 100.0
    );
    println!(
        "time       : {:.3} ms at {:.2} GHz",
        prediction.seconds_at(m.core.frequency_ghz) * 1e3,
        m.core.frequency_ghz
    );
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let name = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("simulate needs a workload name")?;
    let spec = workload(name)?;
    let m = machine(args)?;
    let n = instructions(args);
    let r = OooSimulator::new(SimConfig::new(m.clone())).run(&mut spec.trace(n));
    println!("workload   : {name}  ({n} instructions)");
    println!("machine    : {}", m.name);
    println!(
        "CPI        : {:.3}  (MLP {:.2}, branch MPKI {:.2})",
        r.cpi(),
        r.mlp,
        r.branch_mpki()
    );
    for (c, v) in r.cpi_stack.iter() {
        if v > 0.0005 {
            println!("  {:<8} {:.3}", c.label(), v);
        }
    }
    let power = PowerModel::new(&m).power(&r.activity);
    println!("power      : {:.1} W", power.total());
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let profile = load_profile(args)?;
    let points = DesignSpace::thesis_table_6_3().enumerate();
    let eval = SpaceEvaluation::run(&points, &profile, None, &SweepConfig::default());
    let front = ParetoFront::of(&eval.model_points());
    println!(
        "{} of {} designs are Pareto-optimal for {}:",
        front.indices().len(),
        points.len(),
        profile.name
    );
    println!("{:>26} {:>9} {:>9}", "design", "CPI", "watts");
    for i in front.indices() {
        let o = &eval.outcomes[i];
        println!(
            "{:>26} {:>9.3} {:>9.2}",
            points[i].machine.name, o.model_cpi, o.model_power
        );
    }
    Ok(())
}

/// `pmt explore`: stream a (possibly huge) design space through the
/// online accumulators — Pareto frontier, top-K, moments — in bounded
/// memory. The model-only, scale-out counterpart of `pmt sweep`.
fn cmd_explore(args: &[String]) -> Result<(), String> {
    let profile = load_profile(args)?;
    let space_name = flag(args, "--space").unwrap_or_else(|| "big".into());
    let space: Box<dyn LazyDesignSpace> = match space_name.as_str() {
        "thesis" | "full" => Box::new(DesignSpace::thesis_table_6_3()),
        "validation" => Box::new(DesignSpace::validation_subspace()),
        "small" => Box::new(DesignSpace::small()),
        "big" | "demo" => Box::new(ProductSpace::frontier_demo()),
        other => {
            return Err(format!(
                "unknown space `{other}` (thesis|validation|small|big)"
            ))
        }
    };

    let top_k = match flag(args, "--top") {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid --top `{raw}` (want a count)"))?,
        None => 10,
    };
    let objective_name = flag(args, "--objective").unwrap_or_else(|| "seconds".into());
    let objective = Objective::from_name(&objective_name)
        .ok_or_else(|| format!("unknown objective `{objective_name}`"))?;

    let mut sweep = StreamingSweep::new(&profile)
        .top_k(top_k)
        .objective(objective);
    let bound = |name: &str| -> Result<Option<f64>, String> {
        match flag(args, name) {
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid {name} `{raw}` (want a number)")),
            None => Ok(None),
        }
    };
    let mut constraints = DesignConstraints::new();
    if let Some(w) = bound("--max-width")? {
        constraints = constraints.max_dispatch_width(w as u32);
    }
    if let Some(r) = bound("--max-rob")? {
        constraints = constraints.max_rob(r as u32);
    }
    if let Some(kb) = bound("--max-l3-kb")? {
        constraints = constraints.max_l3_kb(kb as u32);
    }
    if !constraints.is_unconstrained() {
        sweep = sweep.constraints(constraints);
    }
    if let Some(w) = bound("--max-power")? {
        sweep = sweep.max_power_w(w);
    }
    if let Some(s) = bound("--max-seconds")? {
        sweep = sweep.max_seconds(s);
    }
    if args.iter().any(|a| a == "--serial") {
        sweep = sweep.serial();
    }

    eprintln!(
        "streaming {} design points for {}...",
        space.len(),
        profile.name
    );
    let summary = sweep.run(space.as_ref());

    println!("workload    : {}", profile.name);
    println!(
        "space       : {space_name} ({} points)",
        summary.space_points
    );
    println!(
        "evaluated   : {}  (pre-filtered {}, over budget {})",
        summary.evaluated, summary.rejected, summary.over_budget
    );
    let stat = |name: &str, m: &pmt::model::Moments| {
        println!(
            "{name:<12}: mean {:.3}  min {:.3}  max {:.3}",
            m.mean(),
            m.min,
            m.max
        );
    };
    stat("CPI", &summary.cpi);
    stat("power (W)", &summary.power);
    stat("time (ms)", &{
        let mut ms = summary.seconds;
        ms.sum *= 1e3;
        ms.min *= 1e3;
        ms.max *= 1e3;
        ms
    });

    println!(
        "frontier    : {} non-dominated designs",
        summary.frontier.len()
    );
    const SHOWN: usize = 20;
    println!(
        "{:>8} {:>34} {:>10} {:>9} {:>9}",
        "id", "design", "ms", "watts", "CPI"
    );
    for e in summary.frontier.iter().take(SHOWN) {
        let machine = space.point_at(e.id).machine;
        println!(
            "{:>8} {:>34} {:>10.3} {:>9.2} {:>9.3}",
            e.id,
            machine.name,
            e.item.seconds * 1e3,
            e.item.power,
            e.item.cpi
        );
    }
    if summary.frontier.len() > SHOWN {
        println!(
            "  ... {} more (write --out FILE for all)",
            summary.frontier.len() - SHOWN
        );
    }

    println!("top {} by {}:", summary.top.len(), objective.label());
    for e in &summary.top {
        let machine = space.point_at(e.id).machine;
        println!(
            "{:>8} {:>34}  {} = {:.4}",
            e.id,
            machine.name,
            objective.label(),
            e.key
        );
    }

    if let Some(path) = flag(args, "--out") {
        let json = serde_json::to_string(&summary).map_err(|e| e.to_string())?;
        std::fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("streaming summary -> {path}");
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    use pmt::validate::{ValidationConfig, Validator};
    let smoke = args.iter().any(|a| a == "--smoke");

    let mut config = if smoke {
        ValidationConfig::smoke()
    } else {
        ValidationConfig::default_scale()
    };
    if let Some(n) = flag(args, "--instructions").and_then(|v| v.parse().ok()) {
        config.profile_instructions = n;
    }
    if let Some(n) = flag(args, "--sim-instructions").and_then(|v| v.parse().ok()) {
        config.sim_instructions = n;
    }

    let space_name =
        flag(args, "--space").unwrap_or_else(|| if smoke { "validation" } else { "full" }.into());
    let space = match space_name.as_str() {
        "full" => DesignSpace::thesis_table_6_3(),
        "validation" => DesignSpace::validation_subspace(),
        "small" => DesignSpace::small(),
        other => return Err(format!("unknown space `{other}` (full|validation|small)")),
    };

    let default_workloads = if smoke {
        "astar,mcf"
    } else {
        "astar,gcc,mcf,milc"
    };
    let workloads = flag(args, "--workloads").unwrap_or_else(|| default_workloads.into());
    let names: Vec<&str> = if workloads == "all" {
        SUITE.to_vec()
    } else {
        workloads.split(',').map(str::trim).collect()
    };

    let mut validator = Validator::new(config.clone()).space(&space);
    for name in &names {
        validator = validator.workload_named(name)?;
    }
    let cache_path = flag(args, "--cache");
    if let Some(path) = &cache_path {
        if std::path::Path::new(path).exists() {
            validator = validator.cache(std::sync::Arc::new(SimCache::load(path)?));
        }
    }

    eprintln!(
        "validating {} workloads x {} points ({} sim instructions each)...",
        names.len(),
        space.len(),
        config.sim_instructions
    );
    let report = validator.run();
    print!("{}", report.render_table());

    if let Some(path) = &cache_path {
        validator.shared_cache().save(path)?;
        eprintln!("simulation cache -> {path}");
    }
    if let Some(path) = flag(args, "--out") {
        std::fs::write(&path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("validation report -> {path}");
    }
    // A malformed or valueless threshold must fail loudly, never
    // silently skip the check — CI's accuracy gate depends on it.
    if args.iter().any(|a| a == "--max-mean-cpi-error") {
        let raw =
            flag(args, "--max-mean-cpi-error").ok_or("missing value for --max-mean-cpi-error")?;
        let threshold: f64 = raw.parse().map_err(|_| {
            format!("invalid --max-mean-cpi-error `{raw}` (want a fraction, e.g. 0.15)")
        })?;
        if !report.within_cpi_threshold(threshold) {
            return Err(format!(
                "mean |CPI error| {:.2}% exceeds threshold {:.2}%",
                report.mean_abs_cpi_error() * 100.0,
                threshold * 100.0
            ));
        }
        println!(
            "threshold check: mean |CPI error| {:.2}% <= {:.2}% — OK",
            report.mean_abs_cpi_error() * 100.0,
            threshold * 100.0
        );
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let out_dir = flag(args, "--out-dir").unwrap_or_else(|| "docs".into());
    // Thread the memoized simulation cache through every builder that
    // supports it (the validation and simulated-sweep figures): a warm
    // regeneration performs zero new reference simulations.
    if let Some(cache) = flag(args, "--cache") {
        std::env::set_var("PMT_SIM_CACHE", cache);
    }
    let scale = pmt_bench::HarnessConfig::default_scale();
    eprintln!(
        "generating the reproduction report at {} instructions per workload...",
        scale.instructions
    );
    let report = pmt_bench::report_gen::generate();
    let files = pmt_bench::report_gen::write(&report, std::path::Path::new(&out_dir))?;
    pmt_bench::harness::save_shared_sim_cache()?;
    let charts = report.figures().filter(|f| f.is_chart()).count();
    let total = report.figures().count();
    println!("report -> {out_dir}/REPRODUCTION.md ({total} figures, {charts} SVGs, {files} files)");
    println!("index  -> {out_dir}/PAPER_MAP.md");
    Ok(())
}

fn cmd_corun(args: &[String]) -> Result<(), String> {
    let names: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    if names.len() < 2 {
        return Err("corun needs at least two workloads".into());
    }
    let n = instructions(args);
    let m = machine(args)?;
    let profiles: Vec<ApplicationProfile> = names
        .iter()
        .map(|name| profile_workload(name, n))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&ApplicationProfile> = profiles.iter().collect();
    let out = MulticoreModel::new(&m, pmt::model::ModelConfig::default()).predict(&refs);
    println!("co-run on {} ({} cores):", m.name, refs.len());
    println!(
        "{:<12} {:>9} {:>9} {:>10} {:>10}",
        "workload", "soloCPI", "coCPI", "slowdown", "LLC share"
    );
    for c in &out.cores {
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>9.2}x {:>9.0}%",
            c.workload,
            c.solo.cpi(),
            c.shared.cpi(),
            c.slowdown(),
            c.llc_share * 100.0
        );
    }
    println!(
        "throughput {:.2} IPC, mean slowdown {:.2}x ({} fixed-point iterations)",
        out.throughput_ipc(),
        out.mean_slowdown(),
        out.iterations
    );
    Ok(())
}

fn cmd_smt(args: &[String]) -> Result<(), String> {
    let names: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    if names.len() < 2 {
        return Err("smt needs at least two workloads".into());
    }
    let n = instructions(args);
    let m = machine(args)?;
    let profiles: Vec<ApplicationProfile> = names
        .iter()
        .map(|name| profile_workload(name, n))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&ApplicationProfile> = profiles.iter().collect();
    let out = SmtModel::new(&m, pmt::model::ModelConfig::default()).predict(&refs);
    println!("SMT on {} ({} hardware threads):", m.name, refs.len());
    println!(
        "{:<12} {:>9} {:>9} {:>10}",
        "thread", "soloCPI", "smtCPI", "slowdown"
    );
    for t in &out.threads {
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>9.2}x",
            t.workload,
            t.solo.cpi(),
            t.smt.cpi(),
            t.slowdown()
        );
    }
    println!(
        "throughput {:.2} IPC → gain {:.2}x over single-threaded",
        out.throughput_ipc(),
        out.throughput_gain()
    );
    Ok(())
}

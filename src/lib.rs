//! # PMT — Processor Modeling Toolkit
//!
//! A from-scratch Rust reproduction of *"Micro-architecture independent
//! analytical processor performance and power modeling"* (Van den Steen et
//! al., ISPASS 2015; extended in the 2018 PhD thesis of the same name).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`trace`] — dynamic μop trace IR and micro-trace sampling,
//! * [`uarch`] — machine configurations, the Nehalem reference and the
//!   243-point design space,
//! * [`workloads`] — 29 synthetic SPEC CPU 2006 stand-ins,
//! * [`profiler`] — the micro-architecture independent profiler (AIP),
//! * [`statstack`] — the StatStack statistical cache model,
//! * [`branch`] — branch predictors and the linear branch entropy model,
//! * [`cachesim`] — functional cache hierarchy simulation,
//! * [`sim`] — the cycle-level out-of-order reference simulator,
//! * [`model`] — the micro-architecture independent interval model (the
//!   paper's contribution),
//! * [`power`] — the McPAT-style power model,
//! * [`ml`] — the learned residual corrector: hand-rolled ridge
//!   regression over machine + profile features, trained from
//!   validation outputs and applied on top of the analytical model,
//! * [`dse`] — design-space exploration: materializing and streaming
//!   sweeps, lazy spaces, Pareto pruning and DVFS,
//! * [`validate`] — differential model-vs-simulator validation with
//!   memoized reference runs and serializable accuracy reports,
//! * [`report`] — deterministic figure rendering (typed figures to
//!   text, Markdown and hand-rolled SVG) behind `docs/REPRODUCTION.md`,
//! * [`mod@bench`] — the experiment harness, the figure registry behind
//!   every `fig*`/`tbl*` binary, and the `pmt report` generator,
//! * [`api`] — the versioned wire schema (requests, responses,
//!   structured errors) spoken by both the CLI's JSON outputs and the
//!   daemon,
//! * [`serve`] — the `pmt serve` prediction service: prepared-profile
//!   registry, hand-rolled HTTP, request coalescing and backpressure.
//!
//! # Quickstart
//!
//! ```
//! use pmt::prelude::*;
//!
//! // Profile a workload once, micro-architecture independently...
//! let workload = WorkloadSpec::by_name("gcc").unwrap();
//! let profile = Profiler::new(ProfilerConfig::fast_test())
//!     .profile(&mut workload.trace(200_000));
//!
//! // ...then predict performance for any machine in seconds.
//! let machine = MachineConfig::nehalem();
//! let prediction = IntervalModel::new(&machine).predict(&profile);
//! assert!(prediction.cpi() > 0.0);
//!
//! // Or sweep a whole design space, rayon-parallel, from the same profile.
//! let batch = SweepBuilder::new()
//!     .space(DesignSpace::small())
//!     .profile(&profile)
//!     .run();
//! let front = ParetoFront::of(&batch.evaluations[0].model_points());
//! assert!(!front.indices().is_empty());
//! ```
//!
//! # Exploring large design spaces
//!
//! Spaces far beyond the thesis grid are declared lazily and **streamed**
//! — points decode on demand, predictions fold into online accumulators
//! (Pareto frontier, top-K, moments), and memory stays bounded by the
//! answer rather than the space
//! (see [`dse`] and `docs/ARCHITECTURE.md`):
//!
//! ```
//! use pmt::prelude::*;
//!
//! let workload = WorkloadSpec::by_name("mcf").unwrap();
//! let profile = Profiler::new(ProfilerConfig::fast_test())
//!     .profile(&mut workload.trace(50_000));
//!
//! // Five axes in five lines; nothing materialized up front.
//! let space = ProductSpace::new(MachineConfig::nehalem())
//!     .dispatch_widths(&[2, 4, 6, 8])
//!     .rob_sizes(&[64, 128, 256, 512])
//!     .l3_kb(&[2048, 8192])
//!     .mshr_entries(&[8, 16, 32])
//!     .frequency_ghz(&[2.0, 2.66, 3.2]);
//! assert_eq!(space.len(), 288);
//!
//! let summary = StreamingSweep::new(&profile)
//!     .objective(Objective::Energy)
//!     .top_k(5)
//!     .run(&space);
//! assert_eq!(summary.evaluated, 288);
//! assert!(!summary.frontier.is_empty()); // non-dominated designs only
//! assert_eq!(summary.top.len(), 5); // 5 lowest-energy designs
//! ```

pub use pmt_api as api;
pub use pmt_bench as bench;
pub use pmt_branch as branch;
pub use pmt_cachesim as cachesim;
pub use pmt_core as model;
pub use pmt_dse as dse;
pub use pmt_ml as ml;
pub use pmt_power as power;
pub use pmt_profiler as profiler;
pub use pmt_report as report;
pub use pmt_serve as serve;
pub use pmt_sim as sim;
pub use pmt_statstack as statstack;
pub use pmt_trace as trace;
pub use pmt_uarch as uarch;
pub use pmt_validate as validate;
pub use pmt_workloads as workloads;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use pmt_api::{
        ApiError, ErrorBody, ExploreRequest, ExploreResponse, MachineSpec, PredictRequest,
        PredictResponse, SpaceSpec, WIRE_SCHEMA_VERSION,
    };
    pub use pmt_core::{
        IntervalModel, ModelConfig, Moments, Prediction, PredictionSummary, PreparedProfile,
    };
    pub use pmt_dse::{
        BatchEvaluation, DesignConstraints, LazyDesignSpace, Objective, ParetoAccumulator,
        ParetoFront, ProductSpace, SpaceEvaluation, StreamingSummary, StreamingSweep, SweepBuilder,
        SweepConfig, TopK,
    };
    pub use pmt_power::{PowerBreakdown, PowerModel};
    pub use pmt_profiler::{ApplicationProfile, Profiler, ProfilerConfig};
    pub use pmt_report::{Figure, FigureKind, Report};
    pub use pmt_sim::{OooSimulator, SimCache, SimConfig, SimResult};
    pub use pmt_trace::{MicroOp, SamplingConfig, TraceSource, UopClass};
    pub use pmt_uarch::{DesignSpace, MachineConfig};
    pub use pmt_validate::{ErrorStats, ValidationConfig, ValidationReport, Validator};
    pub use pmt_workloads::{WorkloadSpec, SUITE};
}

//! Offline, API-compatible subset of `rayon` for this workspace.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! slice of rayon it uses: `par_iter()` over slices, `into_par_iter()` over
//! vectors and `usize` ranges, with `map`, `for_each`, `sum` and
//! order-preserving `collect`.
//!
//! Scheduling is a scoped-thread pool with an atomic work counter (dynamic
//! load balancing, like rayon's work stealing at the granularity that
//! matters for this workload: design points with very uneven evaluation
//! cost). Results always come back **in input order**, which the DSE sweep
//! relies on for bit-identical serial/parallel equivalence.
//!
//! Thread count honours `RAYON_NUM_THREADS`, else the machine's available
//! parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelExec};
}

/// Number of worker threads a parallel call will use.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        rb = Some(hb.join().expect("rayon::join worker panicked"));
        ra
    });
    (ra, rb.unwrap())
}

/// Order-preserving parallel map over borrowed items (dynamic scheduling).
fn par_map_ref<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    if n <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = current_num_threads().min(n);
    let next = AtomicUsize::new(0);
    let out = Mutex::new(Vec::<(usize, R)>::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                out.lock().unwrap().extend(local);
            });
        }
    });
    let mut pairs = out.into_inner().unwrap();
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Order-preserving parallel map over owned items.
fn par_map_owned<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = current_num_threads().min(n);
    // Reversed so popping from the back hands out index order cheaply.
    let mut queue: Vec<(usize, T)> = items.into_iter().enumerate().rev().collect();
    queue.shrink_to_fit();
    let queue = Mutex::new(queue);
    let out = Mutex::new(Vec::<(usize, R)>::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let item = queue.lock().unwrap().pop();
                    let Some((i, item)) = item else { break };
                    local.push((i, f(item)));
                }
                out.lock().unwrap().extend(local);
            });
        }
    });
    let mut pairs = out.into_inner().unwrap();
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

// ---------------------------------------------------------------------------
// Iterator-flavoured public surface
// ---------------------------------------------------------------------------

/// `.par_iter()` on borrowing collections.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Sync + 'a;
    /// A parallel iterator over `&Item`.
    fn par_iter(&'a self) -> ParSlice<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

/// `.into_par_iter()` on owning collections and ranges.
pub trait IntoParallelIterator {
    /// The owned item type.
    type Item: Send;
    /// The parallel iterator produced.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParVec<usize>;
    fn into_par_iter(self) -> ParVec<usize> {
        ParVec {
            items: self.collect(),
        }
    }
}

/// A parallel iterator over a borrowed slice.
pub struct ParSlice<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Parallel map; evaluates eagerly, preserving input order.
    pub fn map<R: Send, F: Fn(&T) -> R + Sync>(self, f: F) -> ParDone<R> {
        ParDone {
            items: par_map_ref(self.items, f),
        }
    }

    /// Parallel side-effecting visit.
    pub fn for_each<F: Fn(&T) + Sync>(self, f: F) {
        par_map_ref(self.items, |x| f(x));
    }
}

/// A parallel iterator over owned items.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParVec<T> {
    /// Parallel map; evaluates eagerly, preserving input order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParDone<R> {
        ParDone {
            items: par_map_owned(self.items, f),
        }
    }

    /// Parallel side-effecting visit.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map_owned(self.items, f);
    }
}

/// An evaluated parallel pipeline, ready to collect (items in input order).
pub struct ParDone<R> {
    items: Vec<R>,
}

/// Terminal operations shared by evaluated pipelines.
pub trait ParallelExec<R> {
    /// Gather results, preserving input order.
    fn collect<C: FromParallelIterator<R>>(self) -> C;
}

impl<R: Send> ParallelExec<R> for ParDone<R> {
    fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered(self.items)
    }
}

impl<R: Send> ParDone<R> {
    /// Chain another map (runs as a second parallel pass).
    pub fn map<U: Send, F: Fn(R) -> U + Sync>(self, f: F) -> ParDone<U> {
        ParDone {
            items: par_map_owned(self.items, f),
        }
    }

    /// Sum the results.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of results.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// Collection from an ordered parallel result.
pub trait FromParallelIterator<R> {
    /// Build from results already in input order.
    fn from_ordered(items: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered(items: Vec<R>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn owned_map_preserves_order() {
        let squares: Vec<usize> = (0..257usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, (0..257).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn chained_maps_compose() {
        let v: Vec<i32> = vec![3, 1, 2];
        let out: Vec<i32> = v.par_iter().map(|&x| x + 1).map(|x| x * 10).collect();
        assert_eq!(out, vec![40, 20, 30]);
    }
}

//! Offline mini property-testing engine, API-compatible with the slice of
//! `proptest` this workspace uses.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! deterministic re-implementation: the [`proptest!`] macro runs each
//! property over `ProptestConfig::cases` inputs drawn from [`Strategy`]
//! values. Failing cases panic with the rendered condition (no shrinking —
//! seeds are deterministic per test name and case index, so failures
//! reproduce exactly on re-run).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Run-time configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The source of test-case randomness (deterministic per test + case).
pub type TestRng = StdRng;

/// Deterministic RNG for one test case: the same (test, case) pair always
/// sees the same input, so failures reproduce without recorded seeds.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37))
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `Strategy::prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Build that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Whole-domain strategy behind `any::<T>()`.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> AnyStrategy<$t> {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_for_tuples!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// The `prop::` module namespace (`prop::collection::vec` etc.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Element count for collection strategies: a fixed size or a range.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange {
                    lo: n,
                    hi_exclusive: n + 1,
                }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_exclusive: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    lo: *r.start(),
                    hi_exclusive: *r.end() + 1,
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, len)` — vectors of `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Assert inside a property; panics with the rendered condition on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("property failed: {} — {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            panic!(
                "property failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            panic!(
                "property failed: {} == {} (left: {:?}, right: {:?}) — {}",
                stringify!($a),
                stringify!($b),
                __a,
                __b,
                format!($($fmt)+)
            );
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            panic!(
                "property failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                __a
            );
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over many generated inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::case_rng(concat!(module_path!(), "::", stringify!($name)), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vectors_respect_size(v in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn maps_apply(n in (0u8..10).prop_map(|x| x as u32 * 2)) {
            prop_assert!(n % 2 == 0 && n < 20);
        }

        #[test]
        fn tuples_and_any(pair in (0.1f64..2.0, 1usize..4), flag in any::<bool>()) {
            prop_assert!(pair.0 > 0.0 && pair.1 >= 1);
            prop_assert_eq!(flag as u8 & !1, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let strat = crate::prop::collection::vec(0u64..1000, 5..20);
        let a: Vec<_> = (0..10)
            .map(|c| strat.generate(&mut crate::case_rng("t", c)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| strat.generate(&mut crate::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}

//! Offline benchmark harness matching the `criterion` surface this
//! workspace uses: `criterion_group!` / `criterion_main!`, benchmark
//! groups with `sample_size`, `bench_function` with [`BenchmarkId`], and
//! `Bencher::iter`.
//!
//! Each benchmark warms up briefly, then times `sample_size` samples and
//! reports min / mean / max wall-clock time per iteration. `--bench` (the
//! argument cargo passes) is accepted; any other CLI argument is treated as
//! a substring filter on benchmark names, like real criterion.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A benchmark identifier: function name plus an input parameter.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id shown as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render to the display name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Drives one benchmark's timed iterations.
pub struct Bencher {
    samples: usize,
    /// Per-sample wall-clock durations of one `iter` payload call.
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `payload`, once per sample, after a short warm-up.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut payload: F) {
        // Warm-up: until 50ms or 3 calls, whichever is later.
        let warm_start = Instant::now();
        let mut warm_calls = 0;
        while warm_calls < 3 || warm_start.elapsed() < Duration::from_millis(50) {
            std_black_box(payload());
            warm_calls += 1;
            if warm_calls >= 1000 {
                break;
            }
        }
        self.times.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std_black_box(payload());
            self.times.push(t0.elapsed());
        }
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(name: &str, samples: usize, filter: Option<&str>, f: &mut dyn FnMut(&mut Bencher)) {
    if let Some(substr) = filter {
        if !name.contains(substr) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples,
        times: Vec::new(),
    };
    f(&mut bencher);
    if bencher.times.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let min = bencher.times.iter().min().unwrap();
    let max = bencher.times.iter().max().unwrap();
    let mean = bencher.times.iter().sum::<Duration>() / bencher.times.len() as u32;
    println!(
        "{name:<44} time: [{} {} {}]",
        human(*min),
        human(mean),
        human(*max)
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    group_name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.group_name, id.into_name());
        run_one(
            &name,
            self.sample_size,
            self.criterion.filter.as_deref(),
            &mut f,
        );
        self
    }

    /// Finish the group (prints nothing extra; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; a free argument is a name filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            group_name: name.into(),
            sample_size: self.default_sample_size,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(
            name,
            self.default_sample_size,
            self.filter.as_deref(),
            &mut f,
        );
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

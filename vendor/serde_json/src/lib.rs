//! Offline facade matching the slice of `serde_json` this workspace uses:
//! [`to_string`] and [`from_str`] over the vendored serde's JSON engine.

use serde::json::Parser;
use serde::{Deserialize, Serialize};

pub use serde::json::Error;

/// A `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
///
/// Infallible for the types in this workspace, but kept fallible to match
/// the real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_json(&mut out);
    Ok(out)
}

/// Deserialize a `T` from a JSON string, rejecting trailing garbage.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let mut parser = Parser::new(input);
    let value = T::from_json(&mut parser)?;
    parser.finish()?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v = vec![1.5f64, -0.0, std::f64::consts::PI, 1e-300];
        let json = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(
            v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            back.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn strings_escape_and_return() {
        let s = "he said \"hi\"\nüñîçødé \t\\".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn options_and_tuples() {
        let v: Vec<(Option<u64>, String)> = vec![(None, "a".into()), (Some(u64::MAX), "b".into())];
        let json = to_string(&v).unwrap();
        let back: Vec<(Option<u64>, String)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(from_str::<bool>("true false").is_err());
    }
}

//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote — the
//! build container is offline). Supports exactly the shapes this workspace
//! uses: structs with named fields and fieldless enums. Anything else
//! panics with a clear message at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input declared.
enum Shape {
    /// Struct name + named field identifiers, in declaration order.
    Struct(String, Vec<String>),
    /// Enum name + unit variant identifiers.
    Enum(String, Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let mut body = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     ::serde::Serialize::to_json(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json(&self, out: &mut ::std::string::String) {{\n\
                         let __variant = match self {{\n{arms}}};\n\
                         ::serde::json::write_escaped(__variant, out);\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let decls: String = fields
                .iter()
                .map(|f| format!("let mut __f_{f} = ::std::option::Option::None;\n"))
                .collect();
            let arms: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "\"{f}\" => __f_{f} = \
                         ::std::option::Option::Some(::serde::Deserialize::from_json(__p)?),\n"
                    )
                })
                .collect();
            let builds: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: __f_{f}.ok_or_else(|| ::serde::json::Error::missing(\"{f}\"))?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json(__p: &mut ::serde::json::Parser<'_>) \
                         -> ::std::result::Result<Self, ::serde::json::Error> {{\n\
                         {decls}\
                         __p.object_start()?;\n\
                         while let ::std::option::Option::Some(__key) = __p.next_key()? {{\n\
                             match __key.as_str() {{\n\
                                 {arms}\
                                 _ => __p.skip_value()?,\n\
                             }}\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{\n{builds}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json(__p: &mut ::serde::json::Parser<'_>) \
                         -> ::std::result::Result<Self, ::serde::json::Error> {{\n\
                         let __s = __p.string()?;\n\
                         match __s.as_str() {{\n\
                             {arms}\
                             __other => ::std::result::Result::Err(::serde::json::Error::msg(\
                                 format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive (vendored): tuple struct `{name}` is not supported")
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: `{name}` has no body (unit structs unsupported)"),
        }
    };

    match kind.as_str() {
        "struct" => Shape::Struct(name, parse_named_fields(body)),
        "enum" => Shape::Enum(name, parse_unit_variants(body)),
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// Advance past `#[...]` attributes, doc comments and `pub`/`pub(...)`.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
            _ => return,
        }
    }
}

/// Field names of a `{ name: Type, ... }` body, skipping each type by
/// scanning for the separating comma at angle-bracket depth zero.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(field)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            panic!("serde_derive: expected field name, found {:?}", tokens[i]);
        };
        fields.push(field.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!(
                "serde_derive: expected `:` after field `{}`",
                fields.last().unwrap()
            ),
        }
        // Skip the type: everything up to a comma at angle depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Variant names of a fieldless enum body.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(variant)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            panic!("serde_derive: expected variant name, found {:?}", tokens[i]);
        };
        let name = variant.to_string();
        i += 1;
        match tokens.get(i) {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(name);
                i += 1;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the comma.
                variants.push(name);
                while let Some(tok) = tokens.get(i) {
                    i += 1;
                    if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
            }
            Some(TokenTree::Group(_)) => {
                panic!("serde_derive (vendored): enum variant `{name}` carries data — unsupported")
            }
            Some(other) => panic!("serde_derive: unexpected token {other} after `{name}`"),
        }
    }
    variants
}

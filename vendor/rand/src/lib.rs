//! Offline, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! The container this workspace builds in has no crates.io access, so the
//! workspace vendors the small slice of `rand` it actually uses: a
//! deterministic [`rngs::StdRng`] seedable via [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — statistically strong
//! enough for synthetic workload generation and, crucially, *stable*: the
//! sequence for a given seed never changes, which the trace-generation
//! property tests rely on.

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array for `StdRng`).
    type Seed;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 like `rand` does.
    fn seed_from_u64(state: u64) -> Self;
}

/// Element types `gen_range` can sample uniformly.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
}

/// Uniform sampling of `T` over a range type (`a..b` or `a..=b`).
///
/// Blanket impls over [`SampleUniform`] (exactly like the real rand) so type
/// inference never has to pick between per-type range impls — float literals
/// in `gen_range(0.3..2.0)` still fall back to `f64` cleanly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Types the type-inferred `rng.gen()` can produce.
pub trait Standard: Sized {
    /// Draw one value from the type's standard distribution.
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        // 53 random mantissa bits in [0, 1), exactly like rand's Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
fn uniform_u64_below<G: RngCore + ?Sized>(rng: &mut G, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = bound.wrapping_neg() % bound; // (2^64 - bound) mod bound
    loop {
        let v = rng.next_u64();
        if v >= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value from the type's standard distribution (type-inferred).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // A pathological all-zero seed would fix the generator at zero.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, exactly as rand_core does it.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_their_bounds_only() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
            let v = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&v));
            let f = rng.gen_range(0.3f64..2.0);
            assert!((0.3..2.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s));
    }
}

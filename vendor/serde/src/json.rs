//! The single data format behind the vendored serde: a small, strict JSON
//! reader/writer. `serde_json` (also vendored) is a thin facade over this.

use std::fmt;

/// A deserialization error with byte-offset context.
#[derive(Clone, Debug)]
pub struct Error {
    message: String,
    /// Byte offset into the input, when known.
    pub offset: Option<usize>,
}

impl Error {
    /// An error without positional context.
    pub fn msg(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
            offset: None,
        }
    }

    /// The standard "missing field" error the derive macro emits.
    pub fn missing(field: &str) -> Error {
        Error::msg(format!("missing field `{field}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for Error {}

/// Append the JSON string literal encoding of `s` to `out`.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A cursor over JSON text with the primitive moves the `Deserialize`
/// impls and the derive-generated code need.
pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// A parser over `input`.
    pub fn new(input: &'a str) -> Parser<'a> {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    /// An error at the current position.
    pub fn error(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            offset: Some(self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {what}")))
        }
    }

    /// Consume `null` if it is next; report whether it was.
    pub fn try_null(&mut self) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            true
        } else {
            false
        }
    }

    /// Consume `true` or `false`.
    pub fn boolean(&mut self) -> Result<bool, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(true)
        } else if self.bytes[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(false)
        } else {
            Err(self.error("expected boolean"))
        }
    }

    /// Consume a number token and return its text (parsed by the caller so
    /// each integer width uses its own overflow-checked `FromStr`).
    pub fn number_text(&mut self) -> Result<&'a str, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid utf-8 in number"))
    }

    /// Consume a JSON string literal.
    pub fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "string")?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\', "low surrogate")?;
                                self.eat(b'u', "low surrogate")?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte utf-8.
                    let len = utf8_len(b);
                    let end = self.pos - 1 + len;
                    let s = std::str::from_utf8(&self.bytes[self.pos - 1..end])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    /// Consume `{`.
    pub fn object_start(&mut self) -> Result<(), Error> {
        self.eat(b'{', "`{`")
    }

    /// After `object_start`, step to the next key: returns `Some(key)` with
    /// the following `:` consumed, or `None` when the object closes.
    pub fn next_key(&mut self) -> Result<Option<String>, Error> {
        match self.peek() {
            Some(b'}') => {
                self.pos += 1;
                Ok(None)
            }
            Some(b',') => {
                self.pos += 1;
                let key = self.string()?;
                self.eat(b':', "`:`")?;
                Ok(Some(key))
            }
            Some(b'"') => {
                let key = self.string()?;
                self.eat(b':', "`:`")?;
                Ok(Some(key))
            }
            _ => Err(self.error("expected `,`, `}` or string key")),
        }
    }

    /// Consume `[`.
    pub fn array_start(&mut self) -> Result<(), Error> {
        self.eat(b'[', "`[`")
    }

    /// After `array_start`, report whether another element follows (and
    /// consume the separating `,` if any). `first` is true before the first
    /// element.
    pub fn array_next(&mut self, first: bool) -> Result<bool, Error> {
        match self.peek() {
            Some(b']') => {
                self.pos += 1;
                Ok(false)
            }
            Some(b',') if !first => {
                self.pos += 1;
                Ok(true)
            }
            Some(_) if first => Ok(true),
            _ => Err(self.error("expected `,` or `]`")),
        }
    }

    /// Skip one complete JSON value (for unknown object keys).
    pub fn skip_value(&mut self) -> Result<(), Error> {
        match self.peek() {
            Some(b'{') => {
                self.object_start()?;
                while let Some(_key) = self.next_key()? {
                    self.skip_value()?;
                }
                Ok(())
            }
            Some(b'[') => {
                self.array_start()?;
                let mut first = true;
                while self.array_next(first)? {
                    first = false;
                    self.skip_value()?;
                }
                Ok(())
            }
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') | Some(b'f') => self.boolean().map(|_| ()),
            Some(b'n') => {
                if self.try_null() {
                    Ok(())
                } else {
                    Err(self.error("expected null"))
                }
            }
            Some(_) => self.number_text().map(|_| ()),
            None => Err(self.error("unexpected end of input")),
        }
    }

    /// Error unless only trailing whitespace remains.
    pub fn finish(&mut self) -> Result<(), Error> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.error("trailing characters"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b < 0xe0 => 2,
        b if b < 0xf0 => 3,
        _ => 4,
    }
}

//! Offline, API-compatible subset of `serde` for this workspace.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal serde: the [`Serialize`] / [`Deserialize`] traits are JSON-backed
//! (there is exactly one data format in this repo, the JSON used by the `pmt`
//! CLI and the profile round-trip tests), and `#[derive(Serialize,
//! Deserialize)]` comes from the sibling `serde_derive` proc-macro crate.
//!
//! Floats serialize through Rust's shortest round-trip formatting (`{:?}`),
//! so profile round-trips are bit-exact — the paper's profile-once /
//! predict-many workflow depends on that.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::{Error, Parser};

/// Serialize `self` as JSON onto `out`.
///
/// This is the whole serialization contract in the vendored subset: one
/// format, written directly. `serde_json::to_string` drives it.
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn to_json(&self, out: &mut String);
}

/// Deserialize `Self` from the JSON stream behind `parser`.
pub trait Deserialize: Sized {
    /// Parse one JSON value into `Self`.
    fn from_json(parser: &mut Parser<'_>) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self, out: &mut String) {
                out.push_str(itoa_buffer(*self as i128).as_str());
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self, out: &mut String) {
                let mut buf = String::new();
                let mut v = *self as u128;
                if v == 0 { buf.push('0'); }
                while v > 0 {
                    buf.insert(0, (b'0' + (v % 10) as u8) as char);
                    v /= 10;
                }
                out.push_str(&buf);
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

fn itoa_buffer(v: i128) -> String {
    let mut s = String::new();
    if v < 0 {
        s.push('-');
    }
    let mut m = v.unsigned_abs();
    let mut digits = String::new();
    if m == 0 {
        digits.push('0');
    }
    while m > 0 {
        digits.insert(0, (b'0' + (m % 10) as u8) as char);
        m /= 10;
    }
    s.push_str(&digits);
    s
}

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self, out: &mut String) {
                if self.is_finite() {
                    // `{:?}` is Rust's shortest round-trip representation.
                    out.push_str(&format!("{:?}", self));
                } else {
                    // JSON has no NaN/Infinity; mirror serde_json and emit null.
                    out.push_str("null");
                }
            }
        }
    )*};
}
impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for char {
    fn to_json(&self, out: &mut String) {
        json::write_escaped(&self.to_string(), out);
    }
}

impl Serialize for str {
    fn to_json(&self, out: &mut String) {
        json::write_escaped(self, out);
    }
}

impl Serialize for String {
    fn to_json(&self, out: &mut String) {
        json::write_escaped(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self, out: &mut String) {
        (**self).to_json(out);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self, out: &mut String) {
        (**self).to_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self, out: &mut String) {
        match self {
            Some(v) => v.to_json(out),
            None => out.push_str("null"),
        }
    }
}

fn seq_to_json<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.to_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self, out: &mut String) {
        seq_to_json(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self, out: &mut String) {
        seq_to_json(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self, out: &mut String) {
        seq_to_json(self.iter(), out);
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.to_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )+};
}
impl_ser_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Render a map key: JSON object keys must be strings, so stringy keys
/// pass through and other keys (integers, fieldless enums already encode
/// as strings) get their JSON text wrapped in quotes when needed.
fn key_to_json_string<K: Serialize>(key: &K) -> String {
    let mut raw = String::new();
    key.to_json(&mut raw);
    if raw.starts_with('"') {
        raw
    } else {
        let mut quoted = String::with_capacity(raw.len() + 2);
        json::write_escaped(&raw, &mut quoted);
        quoted
    }
}

fn map_to_json<'a, K, V>(entries: impl Iterator<Item = (&'a K, &'a V)>, out: &mut String)
where
    K: Serialize + 'a,
    V: Serialize + 'a,
{
    // Sort by rendered key so serialization is deterministic across runs
    // regardless of hash order.
    let mut rendered: Vec<(String, &V)> =
        entries.map(|(k, v)| (key_to_json_string(k), v)).collect();
    rendered.sort_by(|a, b| a.0.cmp(&b.0));
    out.push('{');
    for (i, (k, v)) in rendered.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push(':');
        v.to_json(out);
    }
    out.push('}');
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json(&self, out: &mut String) {
        map_to_json(self.iter(), out);
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<K, V, S>
{
    fn to_json(&self, out: &mut String) {
        map_to_json(self.iter(), out);
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(p: &mut Parser<'_>) -> Result<Self, Error> {
                let text = p.number_text()?;
                text.parse::<$t>().map_err(|_| p.error(&format!(
                    "invalid {}: `{text}`", stringify!($t))))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_de_float {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(p: &mut Parser<'_>) -> Result<Self, Error> {
                if p.try_null() {
                    // Written for a non-finite float; NaN is the only honest readback.
                    return Ok(<$t>::NAN);
                }
                let text = p.number_text()?;
                text.parse::<$t>().map_err(|_| p.error(&format!(
                    "invalid {}: `{text}`", stringify!($t))))
            }
        }
    )*};
}
impl_de_float!(f32, f64);

impl Deserialize for bool {
    fn from_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.boolean()
    }
}

impl Deserialize for String {
    fn from_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.string()
    }
}

impl Deserialize for char {
    fn from_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        let s = p.string()?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(p.error("expected single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        T::from_json(p).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        if p.try_null() {
            Ok(None)
        } else {
            T::from_json(p).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        let mut items = Vec::new();
        p.array_start()?;
        while p.array_next(items.is_empty())? {
            items.push(T::from_json(p)?);
        }
        Ok(items)
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        let items = Vec::<T>::from_json(p)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_de_tuple {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(p: &mut Parser<'_>) -> Result<Self, Error> {
                p.array_start()?;
                let mut first = true;
                let out = ($(
                    {
                        if !p.array_next(first)? {
                            return Err(p.error("tuple array too short"));
                        }
                        first = false;
                        $name::from_json(p)?
                    },
                )+);
                let _ = first;
                if p.array_next(false)? {
                    return Err(p.error("tuple array too long"));
                }
                Ok(out)
            }
        }
    )+};
}
impl_de_tuple!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Recover a map key of type `K` from the raw object-key text: parse it as
/// a JSON string first (covers `String` and fieldless-enum keys), else as
/// bare JSON (covers integer keys).
fn key_from_json_string<K: Deserialize>(raw: &str) -> Result<K, Error> {
    let mut quoted = String::new();
    json::write_escaped(raw, &mut quoted);
    let mut p = Parser::new(&quoted);
    if let Ok(k) = K::from_json(&mut p) {
        if p.finish().is_ok() {
            return Ok(k);
        }
    }
    let mut p = Parser::new(raw);
    let k = K::from_json(&mut p)?;
    p.finish()?;
    Ok(k)
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        let mut map = std::collections::BTreeMap::new();
        p.object_start()?;
        while let Some(key) = p.next_key()? {
            map.insert(key_from_json_string(&key)?, V::from_json(p)?);
        }
        Ok(map)
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        let mut map = std::collections::HashMap::default();
        p.object_start()?;
        while let Some(key) = p.next_key()? {
            map.insert(key_from_json_string(&key)?, V::from_json(p)?);
        }
        Ok(map)
    }
}

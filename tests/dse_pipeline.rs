//! Integration: design-space exploration and Pareto pruning quality.

use pmt::dse::{ParetoFront, PruningQuality, SpaceEvaluation, SweepConfig};
use pmt::prelude::*;

#[test]
fn pruning_quality_on_a_small_space() {
    let spec = WorkloadSpec::by_name("bzip2").unwrap();
    let profile =
        Profiler::new(ProfilerConfig::fast_test()).profile_named("bzip2", &mut spec.trace(60_000));
    let points = DesignSpace::small().enumerate();
    let cfg = SweepConfig {
        with_simulation: true,
        sim_instructions: 60_000,
        ..Default::default()
    };
    let eval = SpaceEvaluation::run(&points, &profile, Some(&spec), &cfg);
    let q = PruningQuality::evaluate(&eval.sim_points(), &eval.model_points());
    // The thesis' qualitative claims: high specificity and HVR, moderate
    // sensitivity.
    assert!(q.specificity > 0.5, "specificity {q:?}");
    assert!(q.hvr > 0.6, "hvr {q:?}");
    assert!(q.accuracy > 0.5, "accuracy {q:?}");
}

#[test]
fn model_front_is_nonempty_and_nondominated() {
    let spec = WorkloadSpec::by_name("gromacs").unwrap();
    let profile = Profiler::new(ProfilerConfig::fast_test())
        .profile_named("gromacs", &mut spec.trace(40_000));
    let points = DesignSpace::small().enumerate();
    let eval = SpaceEvaluation::run(&points, &profile, None, &SweepConfig::default());
    let pts = eval.model_points();
    let front = ParetoFront::of(&pts);
    let idx = front.indices();
    assert!(!idx.is_empty());
    // No selected point dominates another selected point.
    for &i in &idx {
        for &j in &idx {
            if i == j {
                continue;
            }
            let dominated = pts[j].0 <= pts[i].0
                && pts[j].1 <= pts[i].1
                && (pts[j].0 < pts[i].0 || pts[j].1 < pts[i].1);
            assert!(!dominated, "front member {i} dominated by {j}");
        }
    }
}

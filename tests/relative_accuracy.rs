//! Integration: the thesis' central property — *relative* accuracy across
//! machines, the basis for design-space pruning.

use pmt::prelude::*;
use pmt::uarch::CacheConfig;

fn machines() -> Vec<MachineConfig> {
    let big = MachineConfig::nehalem();
    let mut mid = MachineConfig::nehalem();
    mid.name = "mid".into();
    mid.core = mid.core.with_dispatch_width(4).with_rob(64);
    mid.caches.l3 = CacheConfig::new(2048, 16, 64, 26);
    let small = MachineConfig::low_power();
    vec![big, mid, small]
}

#[test]
fn model_orders_machines_like_the_simulator() {
    let spec = WorkloadSpec::by_name("astar").unwrap();
    let n = 80_000;
    let profile =
        Profiler::new(ProfilerConfig::fast_test()).profile_named("astar", &mut spec.trace(n));
    let mut model_cycles = Vec::new();
    let mut sim_cycles = Vec::new();
    for m in machines() {
        model_cycles.push(IntervalModel::new(&m).predict(&profile).cycles);
        sim_cycles.push(
            OooSimulator::new(SimConfig::new(m))
                .run(&mut spec.trace(n))
                .cycles as f64,
        );
    }
    // The reference machine must beat the low-power one in both views.
    assert!(sim_cycles[0] < sim_cycles[2]);
    assert!(
        model_cycles[0] < model_cycles[2],
        "model inverted big vs small: {model_cycles:?}"
    );
}

#[test]
fn rob_scaling_moves_model_and_sim_the_same_way() {
    let spec = WorkloadSpec::by_name("mcf").unwrap();
    let n = 60_000;
    let profile =
        Profiler::new(ProfilerConfig::fast_test()).profile_named("mcf", &mut spec.trace(n));
    let mut small = MachineConfig::nehalem();
    small.core = small.core.with_rob(64);
    let big = MachineConfig::nehalem();
    let m_small = IntervalModel::new(&small).predict(&profile).cycles;
    let m_big = IntervalModel::new(&big).predict(&profile).cycles;
    // mcf loves a bigger window (more MLP).
    assert!(m_big <= m_small, "model: big ROB should help mcf");
}

//! Golden-snapshot test for the learned residual layer: a fixed-seed
//! grid is validated, a corrector is trained from it, and both the
//! trained artifact (`tests/golden/corrector.json`) and the fused
//! validation report (`tests/golden/fused_report.json`) must be
//! **bit-stable**. On top of the usual drift protection this pins the
//! training pipeline itself: the Fisher–Yates split, the chunk-ordered
//! accumulation and the ridge solve all feed these bytes.
//!
//! After an *intentional* model/trainer change, regenerate with
//!
//! ```console
//! $ PMT_UPDATE_GOLDEN=1 cargo test --test fused_report
//! ```
//!
//! and commit the new snapshots alongside the change that explains them.

use pmt::ml::{train, ResidualModel, TrainOptions};
use pmt::prelude::*;
use pmt::validate::Validator;

fn golden_path(file: &str) -> String {
    format!("{}/tests/golden/{file}", env!("CARGO_MANIFEST_DIR"))
}

/// Compare `json` against the pinned snapshot (or rewrite it under
/// `PMT_UPDATE_GOLDEN=1`).
fn assert_golden(file: &str, json: &str) {
    let path = golden_path(file);
    if std::env::var("PMT_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, json).expect("writing golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "{file} missing — regenerate with PMT_UPDATE_GOLDEN=1 cargo test --test fused_report"
        )
    });
    assert_eq!(
        json, expected,
        "{file} drifted from the golden snapshot. If the model, trainer or \
         simulator change was intentional, regenerate with \
         PMT_UPDATE_GOLDEN=1 cargo test --test fused_report"
    );
}

/// The pinned scenario, mirroring `tests/validation_report.rs`: one
/// deterministic seed-42 workload over the 27-point subspace.
fn golden_validator() -> Validator {
    let config = ValidationConfig {
        profile_instructions: 20_000,
        sim_instructions: 20_000,
        profiler: ProfilerConfig::fast_test(),
        model: ModelConfig::default(),
    };
    Validator::new(config)
        .space(&DesignSpace::validation_subspace())
        .workload(WorkloadSpec::baseline("golden", 42))
}

#[test]
fn trained_corrector_and_fused_report_match_golden_snapshots() {
    let validator = golden_validator();
    let data = validator.training_data();
    let model = train(&data.rows, &data.profiles, &TrainOptions::default()).unwrap();
    assert_golden("corrector.json", &model.to_json());

    // The grid is warm from training_data(), so the fused report's cache
    // section deterministically reads 27 hits / 0 misses.
    let fused = validator.run_corrected(Some(&model)).unwrap();
    assert_golden("fused_report.json", &fused.to_json());

    // The artifact round-trips bit-for-bit through its own parser.
    let back = ResidualModel::from_json(&model.to_json()).unwrap();
    assert_eq!(back.to_json(), model.to_json());
}

/// Two *independent* trainings — fresh validator, fresh simulations,
/// fresh split — must write byte-identical artifacts and byte-identical
/// fused reports. This is the determinism contract the committed goldens
/// (and CI's fusion-smoke double-train) stand on.
#[test]
fn training_twice_from_scratch_is_byte_identical() {
    let one = {
        let validator = golden_validator();
        let data = validator.training_data();
        let model = train(&data.rows, &data.profiles, &TrainOptions::default()).unwrap();
        let report = validator.run_corrected(Some(&model)).unwrap();
        (model.to_json(), report.to_json())
    };
    let two = {
        let validator = golden_validator();
        let data = validator.training_data();
        let model = train(&data.rows, &data.profiles, &TrainOptions::default()).unwrap();
        let report = validator.run_corrected(Some(&model)).unwrap();
        (model.to_json(), report.to_json())
    };
    assert_eq!(one.0, two.0, "corrector artifacts diverged across runs");
    assert_eq!(one.1, two.1, "fused reports diverged across runs");
}

/// Correction is strictly post-fold: stripping the fused section from a
/// corrected report leaves bytes identical to an uncorrected run over
/// the same (warm) grid — the analytical columns, rank correlations and
/// cache counters never see the corrector.
#[test]
fn fused_report_only_adds_the_fused_section() {
    let validator = golden_validator();
    let data = validator.training_data();
    let model = train(&data.rows, &data.profiles, &TrainOptions::default()).unwrap();

    let plain = validator.run();
    let mut fused = validator.run_corrected(Some(&model)).unwrap();
    assert!(fused.fused.is_some(), "corrected run grows a fused section");
    let fused_block = fused.fused.take().unwrap();
    assert_eq!(fused.to_json(), plain.to_json());

    // And the section itself is sane: the corrector metadata matches the
    // artifact, and correction helped on this grid.
    assert_eq!(fused_block.corrector.seed, model.seed);
    assert_eq!(fused_block.corrector.rows_train, model.rows_train);
    assert!(fused_block.cpi.mean_abs <= plain.cpi.mean_abs);
    assert!(fused_block.mean_cpi_rank_delta >= 0.0);
}

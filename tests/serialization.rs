//! Integration: profiles and predictions serialize (the on-disk profile
//! format of the original AIP/PMT tools).

use pmt::prelude::*;

#[test]
fn profile_round_trips_through_json() {
    let spec = WorkloadSpec::by_name("tonto").unwrap();
    let profile =
        Profiler::new(ProfilerConfig::fast_test()).profile_named("tonto", &mut spec.trace(30_000));
    let json = serde_json::to_string(&profile).expect("serialize");
    let back: pmt::profiler::ApplicationProfile = serde_json::from_str(&json).expect("deserialize");
    // Compare via re-serialization: exact f64 round-tripping, tolerant of
    // NaN-free float comparison pitfalls.
    let rejson = serde_json::to_string(&back).expect("re-serialize");
    assert_eq!(json, rejson);
    // The round-tripped profile predicts identically.
    let machine = MachineConfig::nehalem();
    let a = IntervalModel::new(&machine).predict(&profile);
    let b = IntervalModel::new(&machine).predict(&back);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn machine_config_round_trips() {
    let m = MachineConfig::nehalem();
    let json = serde_json::to_string(&m).unwrap();
    let back: MachineConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(m, back);
}

/// Every machine in the 243-point space survives the trip — the sweep's
/// save/restore path must cover the whole space, not just the reference.
#[test]
fn whole_design_space_round_trips() {
    for point in DesignSpace::thesis_table_6_3().enumerate() {
        let json = serde_json::to_string(&point.machine).unwrap();
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(point.machine, back, "machine {}", point.machine.name);
    }
}

/// Sweep outcomes (the batch API's unit of result) round-trip bit-exactly,
/// including the `Option` simulator fields in both states.
#[test]
fn sweep_outcomes_round_trip_bit_exactly() {
    let spec = WorkloadSpec::by_name("astar").unwrap();
    let profile =
        Profiler::new(ProfilerConfig::fast_test()).profile_named("astar", &mut spec.trace(20_000));
    let points = DesignSpace::small().enumerate()[..4].to_vec();
    let cfg = SweepConfig {
        with_simulation: true,
        sim_instructions: 5_000,
        ..Default::default()
    };
    let eval = SpaceEvaluation::run(&points, &profile, Some(&spec), &cfg);
    let model_only = SpaceEvaluation::run(&points, &profile, None, &SweepConfig::default());
    for o in eval.outcomes.iter().chain(&model_only.outcomes) {
        let json = serde_json::to_string(o).unwrap();
        let back: pmt::dse::PointOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(o.design_id, back.design_id);
        assert_eq!(o.workload, back.workload);
        assert_eq!(o.model_cpi.to_bits(), back.model_cpi.to_bits());
        assert_eq!(o.model_power.to_bits(), back.model_power.to_bits());
        assert_eq!(o.model_seconds.to_bits(), back.model_seconds.to_bits());
        assert_eq!(o.sim_cpi.map(f64::to_bits), back.sim_cpi.map(f64::to_bits));
        assert_eq!(
            o.sim_power.map(f64::to_bits),
            back.sim_power.map(f64::to_bits)
        );
        assert_eq!(
            o.sim_seconds.map(f64::to_bits),
            back.sim_seconds.map(f64::to_bits)
        );
    }
}

/// The profile-once file is the contract between the AIP (profiler) and
/// PMT (model) halves: a profile written to disk and read back twice must
/// keep predicting the same bits.
#[test]
fn profile_file_is_stable_across_reloads() {
    let spec = WorkloadSpec::by_name("gcc").unwrap();
    let profile =
        Profiler::new(ProfilerConfig::fast_test()).profile_named("gcc", &mut spec.trace(25_000));
    let json1 = serde_json::to_string(&profile).unwrap();
    let once: pmt::profiler::ApplicationProfile = serde_json::from_str(&json1).unwrap();
    let json2 = serde_json::to_string(&once).unwrap();
    let twice: pmt::profiler::ApplicationProfile = serde_json::from_str(&json2).unwrap();
    let machine = MachineConfig::nehalem();
    let a = IntervalModel::new(&machine).predict(&once);
    let b = IntervalModel::new(&machine).predict(&twice);
    assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
    assert_eq!(json1, json2);
}

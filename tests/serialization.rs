//! Integration: profiles and predictions serialize (the on-disk profile
//! format of the original AIP/PMT tools).

use pmt::prelude::*;

#[test]
fn profile_round_trips_through_json() {
    let spec = WorkloadSpec::by_name("tonto").unwrap();
    let profile = Profiler::new(ProfilerConfig::fast_test())
        .profile_named("tonto", &mut spec.trace(30_000));
    let json = serde_json::to_string(&profile).expect("serialize");
    let back: pmt::profiler::ApplicationProfile =
        serde_json::from_str(&json).expect("deserialize");
    // Compare via re-serialization: exact f64 round-tripping, tolerant of
    // NaN-free float comparison pitfalls.
    let rejson = serde_json::to_string(&back).expect("re-serialize");
    assert_eq!(json, rejson);
    // The round-tripped profile predicts identically.
    let machine = MachineConfig::nehalem();
    let a = IntervalModel::new(&machine).predict(&profile);
    let b = IntervalModel::new(&machine).predict(&back);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn machine_config_round_trips() {
    let m = MachineConfig::nehalem();
    let json = serde_json::to_string(&m).unwrap();
    let back: MachineConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(m, back);
}

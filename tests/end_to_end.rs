//! Integration: the full profile → model → power pipeline against the
//! cycle-level simulator.

use pmt::prelude::*;

fn pipeline(name: &str, n: u64) -> (pmt::model::Prediction, pmt::sim::SimResult) {
    let spec = WorkloadSpec::by_name(name).expect("suite member");
    let machine = MachineConfig::nehalem();
    let profile =
        Profiler::new(ProfilerConfig::fast_test()).profile_named(name, &mut spec.trace(n));
    let prediction = IntervalModel::new(&machine).predict(&profile);
    let sim = OooSimulator::new(SimConfig::new(machine)).run(&mut spec.trace(n));
    (prediction, sim)
}

#[test]
fn model_tracks_simulator_for_diverse_workloads() {
    for name in ["hmmer", "milc", "gcc"] {
        let (prediction, sim) = pipeline(name, 100_000);
        let err = (prediction.cpi() - sim.cpi()).abs() / sim.cpi();
        assert!(
            err < 0.6,
            "{name}: model {} vs sim {} ({:.0}% off)",
            prediction.cpi(),
            sim.cpi(),
            err * 100.0
        );
    }
}

#[test]
fn cpi_stack_is_consistent() {
    let (prediction, _) = pipeline("astar", 60_000);
    assert!((prediction.cpi_stack.total() - prediction.cpi()).abs() < 1e-6);
    assert!(prediction.mlp >= 1.0);
}

#[test]
fn power_pipeline_produces_sane_watts() {
    let (prediction, sim) = pipeline("bzip2", 60_000);
    let machine = MachineConfig::nehalem();
    let pm = PowerModel::new(&machine);
    let model_w = pm.power(&prediction.activity).total();
    let sim_w = pm.power(&sim.activity).total();
    assert!(model_w > 3.0 && model_w < 80.0, "{model_w} W");
    let err = (model_w - sim_w).abs() / sim_w;
    assert!(err < 0.35, "power error {:.0}%", err * 100.0);
}

#[test]
fn predictions_are_deterministic() {
    let (a, _) = pipeline("soplex", 50_000);
    let (b, _) = pipeline("soplex", 50_000);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.activity, b.activity);
}

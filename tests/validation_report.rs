//! Golden-snapshot integration test: a fixed-seed workload validated over
//! the 27-point subspace must produce a **bit-stable** `ValidationReport`
//! JSON. This guards the whole differential pipeline — trace generator,
//! profiler, interval model, power model *and* reference simulator —
//! against silent numeric drift: any change to either side of the
//! comparison changes the report.
//!
//! After an *intentional* model/simulator change, regenerate with
//!
//! ```console
//! $ PMT_UPDATE_GOLDEN=1 cargo test --test validation_report
//! ```
//!
//! and commit the new `tests/golden/validation_report.json` alongside the
//! change that explains it.

use pmt::prelude::*;
use pmt::validate::SCHEMA_VERSION;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/validation_report.json"
);

/// The fixed scenario: one deterministic seed-42 workload, the 3×3×3
/// validation subspace, toy budgets. Everything here is pinned — changing
/// any of it invalidates the snapshot on purpose.
fn golden_report() -> ValidationReport {
    let config = ValidationConfig {
        profile_instructions: 20_000,
        sim_instructions: 20_000,
        profiler: ProfilerConfig::fast_test(),
        model: ModelConfig::default(),
    };
    Validator::new(config)
        .space(&DesignSpace::validation_subspace())
        .workload(WorkloadSpec::baseline("golden", 42))
        .run()
}

#[test]
fn validation_report_matches_golden_snapshot() {
    let report = golden_report();
    let json = report.to_json();

    if std::env::var("PMT_UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &json).expect("writing golden snapshot");
        return;
    }

    let expected = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden snapshot missing — regenerate with PMT_UPDATE_GOLDEN=1 cargo test --test validation_report",
    );
    assert_eq!(
        json, expected,
        "ValidationReport drifted from the golden snapshot. If the model or \
         simulator change was intentional, regenerate with \
         PMT_UPDATE_GOLDEN=1 cargo test --test validation_report"
    );
}

#[test]
fn golden_scenario_is_sane_and_round_trips() {
    let report = golden_report();
    assert_eq!(report.schema_version, SCHEMA_VERSION);
    assert_eq!(report.design_points, 27);
    assert_eq!(report.workloads.len(), 1);
    assert_eq!(report.cpi.n, 27);
    assert_eq!(report.cache.misses, 27, "cold golden run simulates all");
    assert!(
        report.cpi.mean_abs > 0.0,
        "model and simulator never agree exactly"
    );
    assert!(report.cpi.mean_abs <= report.cpi.max_abs);
    assert!(
        report.mean_cpi_rank_correlation > 0.0,
        "orderings should correlate"
    );

    let back = ValidationReport::from_json(&report.to_json()).unwrap();
    assert_eq!(back.to_json(), report.to_json(), "serialization is stable");
}

//! Golden-snapshot tests for the wire schema: the concrete bytes of a
//! fixed-scenario [`PredictResponse`] and [`ExploreResponse`] are pinned
//! under `tests/golden/`. Any change to the wire format — a renamed
//! field, a reordered key, a float formatting change — or any numeric
//! drift in the model behind it fails here, which is the point: servers
//! and clients can only stay compatible if these bytes are boring.
//!
//! After an *intentional* schema or model change, regenerate with
//!
//! ```console
//! $ PMT_UPDATE_GOLDEN=1 cargo test --test wire_golden
//! ```
//!
//! and commit the new snapshots alongside the change that explains them.

use pmt::prelude::*;

fn golden_path(file: &str) -> String {
    format!("{}/tests/golden/{file}", env!("CARGO_MANIFEST_DIR"))
}

/// Compare `json` against the pinned snapshot (or rewrite it under
/// `PMT_UPDATE_GOLDEN=1`).
fn assert_golden(file: &str, json: &str) {
    let path = golden_path(file);
    if std::env::var("PMT_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, json).expect("writing golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("{file} missing — regenerate with PMT_UPDATE_GOLDEN=1 cargo test --test wire_golden")
    });
    assert_eq!(
        json, expected,
        "{file} drifted from the golden snapshot. If the wire-schema or \
         model change was intentional, regenerate with \
         PMT_UPDATE_GOLDEN=1 cargo test --test wire_golden"
    );
}

/// The pinned scenario: one deterministic seed-42 workload at toy scale.
fn golden_profile() -> pmt::profiler::ApplicationProfile {
    Profiler::new(ProfilerConfig::fast_test()).profile_named(
        "golden",
        &mut WorkloadSpec::baseline("golden", 42).trace(20_000),
    )
}

#[test]
fn predict_response_matches_golden_snapshot() {
    let profile = golden_profile();
    let prepared = PreparedProfile::new(&profile);
    let req = PredictRequest::new("golden", MachineSpec::named("nehalem"));
    let resp = pmt::serve::engine::predict_response(&prepared, &req).unwrap();
    assert_golden(
        "predict_response.json",
        &serde_json::to_string(&resp).unwrap(),
    );
}

#[test]
fn explore_response_matches_golden_snapshot() {
    let profile = golden_profile();
    let prepared = PreparedProfile::new(&profile);
    let mut req = ExploreRequest::new("golden", SpaceSpec::named("validation"));
    req.top_k = 3;
    req.objective = "edp".to_string();
    let resp = pmt::serve::engine::explore_response(&prepared, &req).unwrap();
    assert_golden(
        "explore_response.json",
        &serde_json::to_string(&resp).unwrap(),
    );
}

/// Requests are small enough to pin inline: this is the exact byte
/// sequence a v1 client must send (and what `pmt explore
/// --emit-request` writes).
#[test]
fn request_and_error_bytes_are_pinned_inline() {
    let mut req = ExploreRequest::new("mcf", SpaceSpec::named("big"));
    req.top_k = 5;
    req.objective = "energy".to_string();
    req.max_power_w = Some(35.0);
    assert_eq!(
        serde_json::to_string(&req).unwrap(),
        r#"{"schema_version":1,"profile":"mcf","space":{"name":"big","base":null,"axes":null},"objective":"energy","top_k":5,"constraints":null,"max_power_w":35.0,"max_seconds":null}"#
    );

    let err = pmt::api::ApiError::busy("2 sweeps already in flight; retry shortly", 2);
    assert_eq!(
        serde_json::to_string(&err.body).unwrap(),
        r#"{"schema_version":1,"code":"busy","message":"2 sweeps already in flight; retry shortly","retry_after_s":2}"#
    );
}

//! Integration: sampled profiling tracks exhaustive profiling (thesis Ch 5).

use pmt::prelude::*;
use pmt::profiler::ProfilerConfig;

#[test]
fn sampled_and_exhaustive_profiles_agree() {
    let spec = WorkloadSpec::by_name("h264ref").unwrap();
    let n = 100_000;
    let machine = MachineConfig::nehalem();
    let mut sampled_cfg = ProfilerConfig::thesis_default();
    sampled_cfg.sampling = pmt::trace::SamplingConfig {
        micro_trace_instructions: 1_000,
        window_instructions: 4_000,
    };
    let sampled = Profiler::new(sampled_cfg).profile_named("h264ref", &mut spec.trace(n));
    let full = Profiler::new(ProfilerConfig::exhaustive(4_000))
        .profile_named("h264ref", &mut spec.trace(n));
    let cpi_sampled = IntervalModel::new(&machine).predict(&sampled).cpi();
    let cpi_full = IntervalModel::new(&machine).predict(&full).cpi();
    let gap = (cpi_sampled - cpi_full).abs() / cpi_full;
    assert!(
        gap < 0.2,
        "sampled {cpi_sampled} vs exhaustive {cpi_full} ({:.1}%)",
        gap * 100.0
    );
}

#[test]
fn micro_trace_weights_cover_the_stream() {
    let spec = WorkloadSpec::by_name("wrf").unwrap();
    let p =
        Profiler::new(ProfilerConfig::fast_test()).profile_named("wrf", &mut spec.trace(50_000));
    let weight: u64 = p.micro_traces.iter().map(|t| t.weight_instructions).sum();
    assert_eq!(weight, p.total_instructions);
}

//! Failure injection and degenerate-input coverage across the pipeline.

use pmt::prelude::*;
use pmt::profiler::ProfilerConfig;
use pmt::trace::VecTrace;

#[test]
fn empty_trace_profiles_and_predicts_benignly() {
    let mut empty = VecTrace::new(Vec::new());
    let profile = Profiler::new(ProfilerConfig::fast_test()).profile_named("empty", &mut empty);
    assert_eq!(profile.total_instructions, 0);
    let p = IntervalModel::new(&MachineConfig::nehalem()).predict(&profile);
    assert_eq!(p.cycles, 0.0);
    assert_eq!(p.cpi(), 0.0);
}

#[test]
fn single_instruction_trace_survives_the_pipeline() {
    let mut t = VecTrace::new(vec![MicroOp::compute(UopClass::IntAlu, 0x40, 0)]);
    let profile = Profiler::new(ProfilerConfig::fast_test()).profile_named("one", &mut t);
    assert_eq!(profile.total_instructions, 1);
    let p = IntervalModel::new(&MachineConfig::nehalem()).predict(&profile);
    assert!(p.cycles > 0.0 && p.cycles.is_finite());
    t.rewind();
    let sim = OooSimulator::new(SimConfig::new(MachineConfig::nehalem())).run(&mut t);
    assert_eq!(sim.instructions, 1);
}

#[test]
fn branchless_trace_has_no_branch_penalty() {
    let uops: Vec<MicroOp> = (0..5_000)
        .map(|i| MicroOp::compute(UopClass::IntAlu, (i % 32) * 4, 0))
        .collect();
    let mut t = VecTrace::new(uops);
    let profile = Profiler::new(ProfilerConfig::fast_test()).profile_named("nobranch", &mut t);
    assert_eq!(profile.branch.branches, 0);
    let p = IntervalModel::new(&MachineConfig::nehalem()).predict(&profile);
    assert_eq!(p.cpi_stack.get(pmt::uarch::CpiComponent::Branch), 0.0);
}

#[test]
fn loadless_trace_has_no_memory_penalty() {
    let uops: Vec<MicroOp> = (0..5_000)
        .map(|i| MicroOp::compute(UopClass::FpAlu, (i % 32) * 4, 0))
        .collect();
    let mut t = VecTrace::new(uops);
    let profile = Profiler::new(ProfilerConfig::fast_test()).profile_named("noload", &mut t);
    let p = IntervalModel::new(&MachineConfig::nehalem()).predict(&profile);
    assert_eq!(p.cpi_stack.get(pmt::uarch::CpiComponent::Dram), 0.0);
    assert_eq!(p.mlp, 1.0);
}

#[test]
fn pathological_machine_configs_do_not_break_the_model() {
    let spec = WorkloadSpec::by_name("astar").unwrap();
    let profile =
        Profiler::new(ProfilerConfig::fast_test()).profile_named("astar", &mut spec.trace(20_000));
    // Tiny ROB, single MSHR, single-wide dispatch.
    let mut tiny = MachineConfig::nehalem();
    tiny.core = tiny.core.with_dispatch_width(1).with_rob(16);
    tiny.mem.mshr_entries = 1;
    let p = IntervalModel::new(&tiny).predict(&profile);
    assert!(p.cycles.is_finite() && p.cycles > 0.0);
    // The tiny machine must be slower than the reference.
    let r = IntervalModel::new(&MachineConfig::nehalem()).predict(&profile);
    assert!(p.cycles > r.cycles);
}

#[test]
fn simulator_handles_mshr_starvation() {
    let spec = WorkloadSpec::by_name("libquantum").unwrap();
    let mut m = MachineConfig::nehalem();
    m.mem.mshr_entries = 1; // worst case: fully serialized misses
    let starved = OooSimulator::new(SimConfig::new(m)).run(&mut spec.trace(20_000));
    let normal =
        OooSimulator::new(SimConfig::new(MachineConfig::nehalem())).run(&mut spec.trace(20_000));
    assert!(starved.cycles > normal.cycles);
    assert!(starved.mlp <= normal.mlp + 1e-9);
}

#[test]
fn zero_weight_profile_classes_do_not_poison_power() {
    let machine = MachineConfig::nehalem();
    let power = PowerModel::new(&machine).power(&pmt::uarch::ActivityVector::default());
    assert!(power.total().is_finite());
    assert_eq!(power.dynamic_total(), 0.0);
}

#[test]
fn truncated_final_window_is_accounted() {
    // Budget that is not a multiple of the sampling window.
    let spec = WorkloadSpec::by_name("wrf").unwrap();
    let profile =
        Profiler::new(ProfilerConfig::fast_test()).profile_named("wrf", &mut spec.trace(12_345));
    assert_eq!(profile.total_instructions, 12_345);
    let covered: u64 = profile
        .micro_traces
        .iter()
        .map(|t| t.weight_instructions)
        .sum();
    assert_eq!(covered, 12_345);
}
